//! Regression test: the event-queue bulk-load hint must be forwarded on
//! sketch-mode (streaming) runs too, not only when `keep_samples` retains
//! full vectors. Without the hint the adaptive backend only promotes when
//! the *pending* count crosses its threshold mid-run — and a paced
//! workload that never holds 4096 events at once would stay on the binary
//! heap for the whole run despite scheduling far more events in total.
//! With the hint it promotes exactly once, up front, at reserve time.

use faas_sim::testutil::test_provider;
use faas_sim::CloudSim;
use simkit::engine::QueueKind;
use stellar_core::client::{run_workload_with, MeasureSpec};
use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::deployer::deploy;

fn adaptive_run(samples: u32) -> CloudSim {
    let static_cfg = StaticConfig { functions: vec![StaticFunction::python_zip("f")] };
    // Fast-completing, paced arrivals: each request finishes well before
    // the next one lands, so pending events never approach the promotion
    // threshold organically. Only the reserve hint can trigger promotion.
    let mut cfg = RuntimeConfig::single(IatSpec::Fixed { ms: 5.0 }, samples);
    cfg.exec_ms = 0.1;
    let mut cloud = CloudSim::with_queue(test_provider(), 7, QueueKind::Adaptive);
    let d = deploy(&mut cloud, &static_cfg, &cfg).unwrap();
    let result = run_workload_with(&mut cloud, &d, &cfg, 3, &MeasureSpec::sketch()).unwrap();
    assert_eq!(result.measured_count, u64::from(samples));
    cloud
}

/// A large sketch-mode run promotes exactly once, up front, from the
/// forwarded reserve hint — not zero times (hint dropped) and not lazily
/// at the pending threshold.
#[test]
fn sketch_mode_forwards_reserve_hint_and_promotes_exactly_once() {
    let cloud = adaptive_run(8_192);
    assert_eq!(
        cloud.promotions(),
        1,
        "a run whose expected event count exceeds the promotion threshold \
         must promote exactly once, at reserve time"
    );
}

/// A small run stays on the heap: the hint is below the threshold and the
/// paced workload never accumulates enough pending events to promote.
#[test]
fn small_sketch_run_never_promotes() {
    let cloud = adaptive_run(64);
    assert_eq!(cloud.promotions(), 0, "small runs must stay on the binary heap");
}
