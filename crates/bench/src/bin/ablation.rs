//! Runs the extension studies: scheduling-policy trade-off (Obs 7's
//! optimisation space) and mechanism knockouts.

fn main() {
    let seed = 20210711;
    println!("{}", bench::experiments::ablation::report(seed).render());
}
