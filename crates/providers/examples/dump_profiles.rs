//! Writes the built-in profiles as JSON files under `crates/providers/profiles/`.
//! Run after editing `profiles.rs` to keep the shipped artifacts in sync:
//! `cargo run -p stellar-providers --example dump_profiles`.

use providers::paper::ProviderKind;
use providers::profiles::config_for;

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/profiles");
    std::fs::create_dir_all(dir).expect("create profiles dir");
    for kind in ProviderKind::ALL {
        let cfg = config_for(kind);
        let path = format!("{dir}/{}.json", cfg.name);
        let json = serde_json::to_string_pretty(&cfg).expect("serialise profile");
        std::fs::write(&path, json + "\n").expect("write profile");
        println!("wrote {path}");
    }
}
