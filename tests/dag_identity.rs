//! Golden byte-identity gate for the DAG workflow engine.
//!
//! The contract: a linear chain expressed as a degenerate single-path
//! DAG is the *same run* as the legacy `ChainConfig`, bit for bit —
//! same latencies, same trace digest, same sweep CSV — across every
//! event-queue backend and however many sweep workers execute the grid.
//! Deploy-time lowering compiles constant-payload linear segments onto
//! the legacy chain path before the first event fires, so no DAG-engine
//! state (and no extra RNG draw) can perturb the stream.

use faas_sim::dag::{DagNodeSpec, DagSpec};
use faas_sim::types::TransferMode;
use simkit::dist::Dist;
use simkit::engine::QueueKind;
use stellar_core::config::{ChainConfig, IatSpec, RuntimeConfig};
use stellar_core::experiment::Experiment;
use stellar_core::runner::{Scenario, SweepGrid, SweepRunner};
use stellar_core::traceio;

const QUEUES: [QueueKind; 3] = [QueueKind::BinaryHeap, QueueKind::Calendar, QueueKind::Adaptive];
const LENGTH: u32 = 4;
const PAYLOAD: u64 = 8_192;
const EXEC_MS: f64 = 5.0;

fn runtime(samples: u32, legacy_chain: bool) -> RuntimeConfig {
    let mut runtime = RuntimeConfig::single(IatSpec::short(), samples);
    runtime.warmup_rounds = 2;
    runtime.exec_ms = EXEC_MS;
    if legacy_chain {
        runtime.chain = Some(ChainConfig {
            length: LENGTH,
            mode: TransferMode::Inline,
            payload_bytes: PAYLOAD,
        });
    }
    runtime
}

/// The same chain as the legacy `ChainConfig` above, written as a
/// single-path DAG with constant payloads so every hop chain-compiles.
fn linear_spec() -> DagSpec {
    let mut spec = DagSpec::new("line");
    for i in 0..LENGTH {
        spec = spec.node(DagNodeSpec::new(format!("hop{i}")).exec_ms(Dist::constant(EXEC_MS)));
    }
    for i in 0..LENGTH - 1 {
        spec = spec.edge(
            format!("hop{i}"),
            format!("hop{}", i + 1),
            TransferMode::Inline,
            Dist::constant(PAYLOAD as f64),
        );
    }
    spec
}

fn experiment(as_dag: bool, queue: QueueKind) -> Experiment {
    let mut experiment = Experiment::new(providers::profiles::aws_like())
        .workload(runtime(150, !as_dag))
        .seed(42)
        .queue(queue);
    if as_dag {
        experiment = experiment.app(linear_spec());
    }
    experiment
}

#[test]
fn linear_dag_latencies_match_legacy_chain_on_every_backend() {
    for queue in QUEUES {
        let legacy = experiment(false, queue).run().expect("legacy chain run");
        let dag = experiment(true, queue).run().expect("dag run");
        assert_eq!(
            legacy.latencies_ms(),
            dag.latencies_ms(),
            "{queue:?}: a single-path DAG must be the legacy chain, sample for sample"
        );
        // The DAG run still reports per-stage stats — as a pure chain,
        // with no joins and no amplification.
        let stats = dag.dag.expect("dag runs report stage stats");
        assert_eq!(stats.stages.len(), LENGTH as usize);
        assert!(stats.joins.is_empty(), "a linear chain has no join stages");
        assert_eq!(stats.straggler_amplification, 0.0);
        assert!(legacy.dag.is_none(), "legacy runs must not grow a dag report");
    }
}

#[test]
fn linear_dag_trace_digest_matches_legacy_chain() {
    for queue in QUEUES {
        let legacy = experiment(false, queue).trace(1 << 16).run().expect("legacy trace");
        let dag = experiment(true, queue).trace(1 << 16).run().expect("dag trace");
        let legacy_jsonl = traceio::to_jsonl(&legacy.spans);
        let dag_jsonl = traceio::to_jsonl(&dag.spans);
        assert_eq!(
            traceio::digest64(&legacy_jsonl),
            traceio::digest64(&dag_jsonl),
            "{queue:?}: span-for-span trace identity"
        );
        assert_eq!(
            traceio::digest64(&traceio::to_csv(&legacy.spans)),
            traceio::digest64(&traceio::to_csv(&dag.spans)),
            "{queue:?}: CSV trace identity"
        );
    }
}

fn sweep_grid(as_dag: bool) -> SweepGrid {
    let scenarios = ["aws-like", "google-like"]
        .into_iter()
        .map(|name| {
            let cfg = match name {
                "aws-like" => providers::profiles::aws_like(),
                _ => providers::profiles::google_like(),
            };
            let mut scenario = Scenario::new(name, cfg).workload(runtime(40, !as_dag));
            if as_dag {
                scenario = scenario.app(linear_spec());
            }
            scenario
        })
        .collect();
    SweepGrid::new(scenarios, vec![0, 1, 2])
}

#[test]
fn linear_dag_sweep_csv_matches_legacy_chain_across_threads_and_backends() {
    let baseline = SweepRunner::new(1).run(&sweep_grid(false)).to_csv();
    for threads in [1, 2, 8] {
        for queue in QUEUES {
            for as_dag in [false, true] {
                let report = SweepRunner::new(threads).queue(queue).run(&sweep_grid(as_dag));
                assert_eq!(
                    report.to_csv(),
                    baseline,
                    "threads {threads}, {queue:?}, dag {as_dag}: sweep CSV must not move"
                );
            }
        }
    }
}
