//! Lightweight metrics registry for simulation models.
//!
//! Two primitive kinds, mirroring what production observability stacks
//! offer:
//!
//! * **Counters** — monotonically increasing `u64`s maintained on the hot
//!   path ([`Metrics::inc`] is a name lookup in a handful-sized table plus
//!   one add, so models keep them always-on).
//! * **Gauges** — point-in-time values recorded as [`MetricSample`]s,
//!   intended to be sampled on periodic simulated-time ticks rather than
//!   on every event.
//!
//! Names are `&'static str`s registered implicitly on first use; iteration
//! order is first-use order, which is deterministic for a fixed seed.

use serde::Serialize;

use crate::time::SimTime;

/// One gauge observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MetricSample {
    /// Simulated time of the observation.
    pub at: SimTime,
    /// Gauge name, e.g. `"queue_depth"`.
    pub name: &'static str,
    /// Sub-key distinguishing instances of the gauge (e.g. a function
    /// index); 0 when unused.
    pub key: u64,
    /// Observed value.
    pub value: f64,
}

/// Registry of counters and gauge samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: Vec<(&'static str, u64)>,
    samples: Vec<MetricSample>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to counter `name`, creating it at zero on first use.
    pub fn add(&mut self, name: &'static str, n: u64) {
        for (existing, value) in &mut self.counters {
            if *existing == name {
                *value += n;
                return;
            }
        }
        self.counters.push((name, n));
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(existing, _)| *existing == name).map_or(0, |(_, value)| *value)
    }

    /// All counters in first-use order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// Folds `other` into this registry: counters are summed (created in
    /// `other`'s first-use order when absent here) and gauge samples are
    /// appended. Merging registries in a fixed order therefore yields a
    /// deterministic result, which the sweep runner relies on.
    pub fn merge(&mut self, other: &Metrics) {
        for &(name, value) in &other.counters {
            self.add(name, value);
        }
        self.samples.extend_from_slice(&other.samples);
    }

    /// Records one gauge observation.
    pub fn gauge(&mut self, at: SimTime, name: &'static str, key: u64, value: f64) {
        self.samples.push(MetricSample { at, name, key, value });
    }

    /// All gauge samples in recording order.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// Gauge samples of one name, in recording order.
    pub fn samples_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a MetricSample> + 'a {
        self.samples.iter().filter(move |s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = Metrics::new();
        m.inc("cold_starts");
        m.inc("cold_starts");
        m.add("spawns", 5);
        assert_eq!(m.counter("cold_starts"), 2);
        assert_eq!(m.counter("spawns"), 5);
        assert_eq!(m.counter("never"), 0);
        let names: Vec<&str> = m.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["cold_starts", "spawns"], "first-use order");
    }

    #[test]
    fn merge_sums_counters_and_appends_samples() {
        let mut a = Metrics::new();
        a.add("completed", 3);
        a.gauge(SimTime::from_secs(1.0), "depth", 0, 1.0);
        let mut b = Metrics::new();
        b.add("cold_starts", 1);
        b.add("completed", 2);
        b.gauge(SimTime::from_secs(2.0), "depth", 0, 4.0);
        a.merge(&b);
        assert_eq!(a.counter("completed"), 5);
        assert_eq!(a.counter("cold_starts"), 1);
        let names: Vec<&str> = a.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["completed", "cold_starts"]);
        assert_eq!(a.samples().len(), 2);
    }

    #[test]
    fn gauges_record_samples() {
        let mut m = Metrics::new();
        m.gauge(SimTime::from_secs(1.0), "queue_depth", 0, 3.0);
        m.gauge(SimTime::from_secs(2.0), "queue_depth", 1, 5.0);
        m.gauge(SimTime::from_secs(2.0), "instances_live", 0, 2.0);
        assert_eq!(m.samples().len(), 3);
        let depths: Vec<f64> = m.samples_of("queue_depth").map(|s| s.value).collect();
        assert_eq!(depths, [3.0, 5.0]);
    }
}
