//! Two-sample Kolmogorov–Smirnov distance.
//!
//! Calibration tests compare simulated latency distributions against
//! target shapes; the KS distance gives a scale-free measure of agreement.

use crate::percentile::sort_samples;

/// The two-sample KS statistic: the supremum of the absolute difference
/// between the two empirical CDFs.
///
/// # Panics
///
/// Panics if either sample set is empty or contains NaN.
///
/// # Examples
///
/// ```
/// use stats::ks::ks_statistic;
/// let a = [1.0, 2.0, 3.0];
/// let b = [1.0, 2.0, 3.0];
/// assert_eq!(ks_statistic(&a, &b), 0.0);
/// ```
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS of empty sample set");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sort_samples(&mut sa);
    sort_samples(&mut sb);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let xa = sa[i];
        let xb = sb[j];
        if xa <= xb {
            i += 1;
        }
        if xb <= xa {
            j += 1;
        }
        let fa = i as f64 / na;
        let fb = j as f64 / nb;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Approximate critical KS distance at significance `alpha` for sample
/// sizes `na`, `nb` (asymptotic formula).
///
/// # Panics
///
/// Panics if sample sizes are zero or `alpha` is outside `(0, 1)`.
pub fn ks_critical(na: usize, nb: usize, alpha: f64) -> f64 {
    assert!(na > 0 && nb > 0, "sample sizes must be positive");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha out of range: {alpha}");
    let c = (-0.5 * (alpha / 2.0).ln()).sqrt();
    let n = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    c / n.sqrt()
}

/// Whether the two samples are consistent with a common distribution at
/// significance `alpha` (true = cannot reject).
pub fn ks_consistent(a: &[f64], b: &[f64], alpha: f64) -> bool {
    ks_statistic(a, b) <= ks_critical(a.len(), b.len(), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::dist::Dist;
    use simkit::rng::Rng;

    fn draw(d: &Dist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = [3.0, 1.0, 2.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert_eq!(ks_statistic(&a, &b), 1.0);
    }

    #[test]
    fn same_distribution_is_consistent() {
        let d = Dist::LogNormal { mu: 1.0, sigma: 0.5 };
        let a = draw(&d, 2000, 1);
        let b = draw(&d, 2000, 2);
        assert!(ks_consistent(&a, &b, 0.01), "ks = {}", ks_statistic(&a, &b));
    }

    #[test]
    fn different_distributions_are_detected() {
        let a = draw(&Dist::LogNormal { mu: 1.0, sigma: 0.5 }, 2000, 1);
        let b = draw(&Dist::LogNormal { mu: 1.5, sigma: 0.5 }, 2000, 2);
        assert!(!ks_consistent(&a, &b, 0.01));
    }

    #[test]
    fn critical_value_shrinks_with_samples() {
        assert!(ks_critical(100, 100, 0.05) > ks_critical(10_000, 10_000, 0.05));
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = [1.0, 5.0, 9.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert_eq!(ks_statistic(&a, &b), ks_statistic(&b, &a));
    }
}
