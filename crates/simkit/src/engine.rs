//! The discrete-event simulation engine.
//!
//! The engine is a time-ordered priority queue of typed events plus a
//! dispatch loop. A simulation is a [`Model`] (user state + event handler)
//! driven by a [`Simulation`], which owns the event queue via a
//! [`Scheduler`]. The handler receives the scheduler so it can post future
//! events while processing the current one.
//!
//! Events at equal timestamps are delivered in FIFO insertion order (a
//! monotone sequence number breaks ties), which makes simulations fully
//! deterministic.

use crate::calqueue::{CalQueueStats, CalendarQueue};
use crate::profile::{EventClass, EventProfile, Profiler};
use crate::soa::{EventKey, KeyedHeap};
use crate::time::SimTime;

/// Which pending-event queue implementation a [`Scheduler`] uses.
///
/// All backends dispatch events in exactly the same total order —
/// ascending `(time, seq)` — so simulation results are bit-identical
/// across them; the choice is purely a performance trade-off. The
/// calendar queue ([`crate::calqueue`]) is amortized O(1) per operation
/// and wins decisively once the pending-event count is large (e.g. a
/// million-invocation submission schedule), but its wheel bookkeeping
/// carries a constant factor the binary heap does not pay on small
/// pending sets. The adaptive backend (the default) starts on the heap
/// and promotes to the wheel once the pending set crosses
/// [`PROMOTE_PENDING`], so toy runs and fleet-scale schedules both get
/// the cheaper structure without anyone picking by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// `std::collections::BinaryHeap`, O(log n) push/pop.
    BinaryHeap,
    /// Bucketed timer wheel, amortized O(1) push/pop.
    Calendar,
    /// Binary heap that promotes itself to a calendar queue once the
    /// pending set exceeds [`PROMOTE_PENDING`] (the default).
    #[default]
    Adaptive,
}

impl QueueKind {
    /// Parses the CLI spelling of a queue kind (`"adaptive"`,
    /// `"calendar"` or `"binary-heap"`).
    pub fn parse(s: &str) -> Option<QueueKind> {
        match s {
            "adaptive" => Some(QueueKind::Adaptive),
            "calendar" => Some(QueueKind::Calendar),
            "binary-heap" | "binary_heap" | "heap" => Some(QueueKind::BinaryHeap),
            _ => None,
        }
    }

    /// The CLI spelling of this queue kind.
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::BinaryHeap => "binary-heap",
            QueueKind::Calendar => "calendar",
            QueueKind::Adaptive => "adaptive",
        }
    }
}

/// Pending-event count past which the adaptive backend abandons its
/// binary heap for the calendar queue.
///
/// Below this the heap's O(log n) is cheap (log₂ 4096 = 12 comparisons)
/// and free of wheel bookkeeping; above it the calendar queue's
/// amortized O(1) wins (BENCH_3: 1.8× at 10⁶ pending). Promotion is
/// one-way — a drained wheel stays a wheel, because a workload that
/// crossed the threshold once tends to cross it again and re-promoting
/// would thrash the O(n) migration.
pub const PROMOTE_PENDING: usize = 4096;

/// User-provided simulation state and event handler.
pub trait Model {
    /// The event type dispatched by the engine.
    type Event;

    /// Handles one event occurring at simulated time `now`. New events may
    /// be posted through `sched`; they must not be scheduled in the past.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The interchangeable queue implementations behind a [`Scheduler`].
///
/// Both heap variants store events structure-of-arrays ([`KeyedHeap`]):
/// sifting compares and streams only the dense 16-byte [`EventKey`] array,
/// with payloads swapped in lockstep from a parallel allocation.
enum Backend<E> {
    Heap(KeyedHeap<E>),
    Calendar(CalendarQueue<E>),
    /// The adaptive backend's start state: a binary heap that promotes
    /// itself to `Calendar` once pending exceeds [`PROMOTE_PENDING`]
    /// (or a `reserve` announces that many events are coming).
    Adaptive(KeyedHeap<E>),
}

impl<E> Backend<E> {
    /// Inserts an event; returns `true` if this push promoted the
    /// adaptive backend to the calendar queue.
    fn push(&mut self, key: EventKey, event: E) -> bool {
        match self {
            Backend::Heap(h) => {
                h.push(key, event);
                false
            }
            Backend::Calendar(c) => {
                c.schedule(key.at, key.seq, event);
                false
            }
            Backend::Adaptive(h) => {
                h.push(key, event);
                if h.len() > PROMOTE_PENDING {
                    self.promote(0);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Migrates the adaptive heap's contents into a calendar queue.
    ///
    /// Both structures honor the same ascending `(time, seq)` total
    /// order, so migrating mid-run cannot change dispatch order — the
    /// wheel re-derives its bucket width from the migrated events
    /// exactly as if they had been scheduled there all along.
    fn promote(&mut self, expected: usize) {
        if let Backend::Adaptive(heap) = self {
            let mut heap = std::mem::take(heap);
            let mut cal = CalendarQueue::new();
            cal.reserve(expected.max(heap.len()));
            for (key, event) in heap.drain() {
                cal.schedule(key.at, key.seq, event);
            }
            *self = Backend::Calendar(cal);
        }
    }

    fn pop(&mut self) -> Option<(EventKey, E)> {
        match self {
            Backend::Heap(h) | Backend::Adaptive(h) => h.pop(),
            Backend::Calendar(c) => c.pop().map(|(at, seq, event)| (EventKey { at, seq }, event)),
        }
    }

    fn len(&self) -> usize {
        match self {
            Backend::Heap(h) | Backend::Adaptive(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self {
            Backend::Heap(h) | Backend::Adaptive(h) => h.peek_key().map(|k| k.at),
            Backend::Calendar(c) => c.peek_time(),
        }
    }

    /// Pre-sizes for `additional` more events; returns `true` if the
    /// reservation promoted the adaptive backend.
    fn reserve(&mut self, additional: usize) -> bool {
        match self {
            Backend::Heap(h) => {
                h.reserve(additional);
                false
            }
            Backend::Calendar(c) => {
                c.reserve(additional);
                false
            }
            Backend::Adaptive(h) => {
                // A reservation announcing a large workload promotes
                // immediately: the calendar gets the capacity hint and
                // sizes its wheel in one rebuild instead of doubling. The
                // hint covers the events already pending plus the
                // announced batch — forwarding only `additional` would
                // undersell the wheel by the current backlog.
                let expected = h.len() + additional;
                if expected > PROMOTE_PENDING {
                    self.promote(expected);
                    true
                } else {
                    h.reserve(additional);
                    false
                }
            }
        }
    }

    fn calendar_stats(&self) -> Option<CalQueueStats> {
        match self {
            Backend::Heap(_) | Backend::Adaptive(_) => None,
            Backend::Calendar(c) => Some(c.stats()),
        }
    }
}

/// A contiguous block of sequence numbers reserved up front via
/// [`Scheduler::reserve_seq_block`], consumed one at a time with
/// [`SeqBlock::take`].
///
/// Reserving lets a driver that *interleaves* submissions with event
/// processing (a streaming workload generator) stamp its submissions with
/// the exact sequence numbers a submit-everything-up-front driver would
/// have used — so timestamp ties still break identically and both drivers
/// dispatch the same total event order.
#[derive(Debug, Clone)]
pub struct SeqBlock {
    next: u64,
    end: u64,
}

impl SeqBlock {
    /// Takes the next sequence number from the block.
    ///
    /// # Panics
    ///
    /// Panics if the block is exhausted.
    pub fn take(&mut self) -> u64 {
        assert!(self.next < self.end, "seq block exhausted at {}", self.end);
        let seq = self.next;
        self.next += 1;
        seq
    }

    /// Sequence numbers left in the block.
    pub fn remaining(&self) -> u64 {
        self.end - self.next
    }
}

/// The pending-event queue handed to [`Model::handle`].
///
/// # Tie-break / monotonicity contract
///
/// Every scheduled event is stamped with a `u64` sequence number that
/// increases monotonically for the lifetime of the scheduler and is
/// **never reset** — not by [`Simulation::run_until`] returning at a
/// horizon, not by the queue draining empty. Dispatch order is ascending
/// `(time, seq)`, so events sharing a timestamp are delivered in exactly
/// the order they were scheduled (FIFO), even when their `schedule_at`
/// calls are separated by any number of `run_until` horizons. Both queue
/// backends ([`QueueKind`]) honor this total order bit-for-bit, which is
/// what keeps simulations deterministic and backend-independent.
pub struct Scheduler<E> {
    queue: Backend<E>,
    seq: u64,
    now: SimTime,
    promotions: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::with_queue(QueueKind::default())
    }
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler::default()
    }

    fn with_queue(kind: QueueKind) -> Self {
        let queue = match kind {
            QueueKind::BinaryHeap => Backend::Heap(KeyedHeap::new()),
            QueueKind::Calendar => Backend::Calendar(CalendarQueue::new()),
            QueueKind::Adaptive => Backend::Adaptive(KeyedHeap::new()),
        };
        Scheduler { queue, seq: 0, now: SimTime::ZERO, promotions: 0 }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule in the past: {at} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        if self.queue.push(EventKey { at, seq }, event) {
            self.promotions += 1;
        }
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimTime, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Reserves the next `count` sequence numbers as a [`SeqBlock`] and
    /// advances the internal counter past them. Subsequent plain
    /// `schedule_at` calls stamp later numbers, so block-stamped events
    /// win FIFO ties against everything scheduled after the reservation —
    /// exactly as if they had all been scheduled at reservation time.
    pub fn reserve_seq_block(&mut self, count: u64) -> SeqBlock {
        let start = self.seq;
        self.seq += count;
        SeqBlock { next: start, end: start + count }
    }

    /// Schedules `event` at `at` with an explicit sequence number taken
    /// from a [`SeqBlock`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past or `seq` was never reserved.
    pub fn schedule_at_with_seq(&mut self, at: SimTime, seq: u64, event: E) {
        assert!(at >= self.now, "cannot schedule in the past: {at} < {}", self.now);
        assert!(seq < self.seq, "seq {seq} was not reserved");
        if self.queue.push(EventKey { at, seq }, event) {
            self.promotions += 1;
        }
    }

    /// Lifetime self-correction counters of the calendar backend; `None`
    /// on the binary heap and on an adaptive queue that has not promoted
    /// yet (a plain heap has no wheel machinery to observe).
    pub fn queue_stats(&self) -> Option<CalQueueStats> {
        self.queue.calendar_stats()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.len() == 0
    }

    /// Timestamp of the next pending event, if any.
    ///
    /// O(1) on the binary-heap backend but O(pending) on the calendar
    /// queue — use it for occasional inspection, never inside a per-event
    /// loop (the engine's own run loops do not call it).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Reserves capacity for at least `additional` more pending events, so
    /// a workload of known size never reallocates the queue mid-run.
    pub fn reserve(&mut self, additional: usize) {
        if self.queue.reserve(additional) {
            self.promotions += 1;
        }
    }

    /// How many times the adaptive backend has promoted its binary heap
    /// to the calendar queue. Promotion is one-way, so for a healthy
    /// adaptive run this is 0 (stayed small) or 1; a bulk `reserve` that
    /// forwards its hint correctly promotes exactly once, up front.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Pops the earliest entry without advancing the clock.
    fn pop_entry(&mut self) -> Option<(EventKey, E)> {
        self.queue.pop()
    }

    /// Puts back an entry just popped by [`Scheduler::pop_entry`],
    /// preserving its original sequence number (used by `run_until` when
    /// the earliest event lies beyond the horizon).
    fn restore(&mut self, key: EventKey, event: E) {
        if self.queue.push(key, event) {
            self.promotions += 1;
        }
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .finish()
    }
}

/// A running simulation: a [`Model`] plus its event queue and clock.
///
/// # Examples
///
/// See the crate-level documentation for a complete example.
pub struct Simulation<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    processed: u64,
    profiler: Option<Profiler<M::Event>>,
}

impl<M: Model + std::fmt::Debug> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("model", &self.model)
            .field("sched", &self.sched)
            .field("processed", &self.processed)
            .field("profiled", &self.profiler.is_some())
            .finish()
    }
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation around `model` with an empty event queue at
    /// time zero, using the default queue backend ([`QueueKind::Adaptive`]).
    pub fn new(model: M) -> Self {
        Simulation { model, sched: Scheduler::new(), processed: 0, profiler: None }
    }

    /// Creates a simulation with an explicit queue backend. Results are
    /// bit-identical across backends (see [`QueueKind`]); this exists for
    /// performance comparison and as an escape hatch.
    pub fn with_queue(model: M, kind: QueueKind) -> Self {
        Simulation { model, sched: Scheduler::with_queue(kind), processed: 0, profiler: None }
    }

    /// Turns on per-event wall-clock profiling (see [`crate::profile`]).
    ///
    /// Only the `run`/`run_until` dispatch loops are instrumented; when
    /// profiling is off they carry no timestamping. Idempotent — calling
    /// twice keeps the accumulated profile.
    pub fn enable_event_profiling(&mut self)
    where
        M::Event: EventClass,
    {
        if self.profiler.is_none() {
            self.profiler = Some(Profiler::new());
        }
    }

    /// The accumulated event-cost profile, if profiling is enabled.
    pub fn event_profile(&self) -> Option<&EventProfile> {
        self.profiler.as_ref().map(Profiler::profile)
    }

    /// Adaptive-backend promotion count (see [`Scheduler::promotions`]).
    pub fn promotions(&self) -> u64 {
        self.sched.promotions()
    }

    /// Current simulated time (time of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an event at absolute time `at` (before or during a run).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        self.sched.schedule_at(at, event);
    }

    /// Reserves a block of sequence numbers (see
    /// [`Scheduler::reserve_seq_block`]).
    pub fn reserve_seq_block(&mut self, count: u64) -> SeqBlock {
        self.sched.reserve_seq_block(count)
    }

    /// Schedules an event with an explicitly reserved sequence number (see
    /// [`Scheduler::schedule_at_with_seq`]).
    pub fn schedule_at_with_seq(&mut self, at: SimTime, seq: u64, event: M::Event) {
        self.sched.schedule_at_with_seq(at, seq, event);
    }

    /// Event-queue self-correction counters (see
    /// [`Scheduler::queue_stats`]).
    pub fn queue_stats(&self) -> Option<CalQueueStats> {
        self.sched.queue_stats()
    }

    /// Pre-sizes the event queue for at least `additional` more pending
    /// events (see [`Scheduler::reserve`]).
    pub fn reserve_events(&mut self, additional: usize) {
        self.sched.reserve(additional);
    }

    /// Dispatches the next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop_entry() {
            Some((key, event)) => {
                debug_assert!(key.at >= self.sched.now);
                self.sched.now = key.at;
                self.processed += 1;
                self.model.handle(key.at, event, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        if self.profiler.is_some() {
            self.run_profiled(None);
            return;
        }
        while self.step() {}
    }

    /// Runs until the queue is empty or the next event is later than
    /// `horizon`. Events exactly at `horizon` are processed, and the clock
    /// always advances to `horizon` so repeated calls compose and state
    /// snapshots taken afterwards see the full elapsed time.
    ///
    /// The loop pops each entry and dispatches it if it is within the
    /// horizon, restoring it (with its original sequence number, so FIFO
    /// order among equal timestamps survives — see [`Scheduler`]) when it
    /// lies beyond. Pop-then-restore rather than peek-then-pop keeps the
    /// loop O(1) per event on the calendar backend, where peeking is as
    /// expensive as a full bucket scan.
    pub fn run_until(&mut self, horizon: SimTime) {
        if self.profiler.is_some() {
            self.run_profiled(Some(horizon));
        } else {
            while let Some((key, event)) = self.sched.pop_entry() {
                if key.at > horizon {
                    self.sched.restore(key, event);
                    break;
                }
                self.sched.now = key.at;
                self.processed += 1;
                self.model.handle(key.at, event, &mut self.sched);
            }
        }
        if self.sched.now < horizon {
            self.sched.now = horizon;
        }
    }

    /// The instrumented dispatch loop behind `run`/`run_until` when
    /// profiling is enabled.
    ///
    /// One wall-clock timestamp is taken per dispatched event; the delta
    /// since the previous timestamp is attributed to that event's class,
    /// so it covers the pop, the classification and the handler. The
    /// per-class sums therefore telescope to the loop's wall time (the
    /// only unattributed work is the final failed pop), which is what
    /// lets the cost table's total stand in for measured wall time.
    fn run_profiled(&mut self, horizon: Option<SimTime>) {
        use std::time::Instant;
        let profiler = self.profiler.as_mut().expect("run_profiled requires a profiler");
        let loop_start = Instant::now();
        let mut last = loop_start;
        while let Some((key, event)) = self.sched.pop_entry() {
            if let Some(h) = horizon {
                if key.at > h {
                    self.sched.restore(key, event);
                    break;
                }
            }
            self.sched.now = key.at;
            self.processed += 1;
            let class = profiler.class_of(&event);
            self.model.handle(key.at, event, &mut self.sched);
            let t = Instant::now();
            profiler.record(class, (t - last).as_nanos() as u64);
            last = t;
        }
        profiler.record_loop(loop_start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Mark(u32),
        Chain(u32),
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Mark(id) => self.seen.push((now, id)),
                Ev::Chain(n) => {
                    self.seen.push((now, n));
                    if n > 0 {
                        sched.schedule_in(now, SimTime::from_millis(1.0), Ev::Chain(n - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn events_dispatch_in_time_order() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::from_millis(30.0), Ev::Mark(3));
        sim.schedule_at(SimTime::from_millis(10.0), Ev::Mark(1));
        sim.schedule_at(SimTime::from_millis(20.0), Ev::Mark(2));
        sim.run();
        let ids: Vec<u32> = sim.model().seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30.0));
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut sim = Simulation::new(Recorder::default());
        let t = SimTime::from_millis(5.0);
        for id in 0..20 {
            sim.schedule_at(t, Ev::Mark(id));
        }
        sim.run();
        let ids: Vec<u32> = sim.model().seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::ZERO, Ev::Chain(4));
        sim.run();
        assert_eq!(sim.model().seen.len(), 5);
        assert_eq!(sim.now(), SimTime::from_millis(4.0));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::ZERO, Ev::Chain(100));
        sim.run_until(SimTime::from_millis(10.0));
        assert_eq!(sim.model().seen.len(), 11); // t = 0..=10ms
        assert_eq!(sim.now(), SimTime::from_millis(10.0));
        // Remaining events still fire on the next run.
        sim.run();
        assert_eq!(sim.model().seen.len(), 101);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim = Simulation::new(Recorder::default());
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.now(), SimTime::from_secs(1.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_at(now.saturating_sub(SimTime::from_nanos(1)), ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule_at(SimTime::from_millis(1.0), ());
        sim.run();
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut sim = Simulation::new(Recorder::default());
        assert!(!sim.step());
    }

    /// The seq counter is never reset by `run_until` horizon re-entry:
    /// same-timestamp events scheduled before, between, and after horizons
    /// still dispatch in global FIFO order.
    #[test]
    fn seq_stays_monotone_across_run_until_horizons() {
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar, QueueKind::Adaptive] {
            let mut sim = Simulation::with_queue(Recorder::default(), kind);
            let t = SimTime::from_millis(50.0);
            sim.schedule_at(t, Ev::Mark(0));
            sim.schedule_at(t, Ev::Mark(1));
            // Return at two horizons before t, scheduling more events at t
            // after each; their seqs must continue where the first batch
            // left off.
            sim.run_until(SimTime::from_millis(10.0));
            sim.schedule_at(t, Ev::Mark(2));
            sim.schedule_at(t, Ev::Mark(3));
            sim.run_until(SimTime::from_millis(20.0));
            sim.schedule_at(t, Ev::Mark(4));
            // Events exactly at the horizon dispatch now (0..=4); one more
            // scheduled at `now == t` must still land after them.
            sim.run_until(t);
            sim.schedule_at(t, Ev::Mark(5));
            sim.run();
            let ids: Vec<u32> = sim.model().seen.iter().map(|&(_, id)| id).collect();
            assert_eq!(ids, vec![0, 1, 2, 3, 4, 5], "backend {kind:?}");
        }
    }

    /// All queue backends produce identical dispatch sequences on a
    /// chained workload driven through interleaved horizons.
    #[test]
    fn backends_dispatch_identically() {
        let run = |kind: QueueKind| {
            let mut sim = Simulation::with_queue(Recorder::default(), kind);
            sim.schedule_at(SimTime::ZERO, Ev::Chain(60));
            sim.schedule_at(SimTime::from_millis(7.0), Ev::Mark(100));
            sim.run_until(SimTime::from_millis(25.0));
            sim.schedule_at(SimTime::from_millis(30.0), Ev::Mark(200));
            sim.run();
            sim.into_model().seen
        };
        let heap = run(QueueKind::BinaryHeap);
        assert_eq!(heap, run(QueueKind::Calendar));
        assert_eq!(heap, run(QueueKind::Adaptive));
    }

    /// The adaptive backend promotes itself to the calendar queue when the
    /// pending set crosses [`PROMOTE_PENDING`], and the migration preserves
    /// the exact `(time, seq)` dispatch order — including FIFO ties — so a
    /// run that straddles the promotion matches a pure-heap run bit for bit.
    #[test]
    fn adaptive_promotes_past_threshold_preserving_order() {
        let n = (PROMOTE_PENDING + 500) as u32;
        let run = |kind: QueueKind| {
            let mut sim = Simulation::with_queue(Recorder::default(), kind);
            for id in 0..n {
                // Deliberate timestamp ties (id / 4) exercise FIFO order
                // across the migration boundary.
                sim.schedule_at(SimTime::from_millis(f64::from(id / 4)), Ev::Mark(id));
            }
            sim.run();
            sim.into_model().seen
        };

        let mut adaptive = Simulation::with_queue(Recorder::default(), QueueKind::Adaptive);
        assert!(adaptive.queue_stats().is_none(), "starts on the heap");
        for id in 0..n {
            adaptive.schedule_at(SimTime::from_millis(f64::from(id / 4)), Ev::Mark(id));
        }
        assert!(adaptive.queue_stats().is_some(), "promoted past PROMOTE_PENDING");
        adaptive.run();
        assert_eq!(adaptive.into_model().seen, run(QueueKind::BinaryHeap));
    }

    /// `reserve_events` announcing a large incoming workload promotes the
    /// adaptive backend immediately, before any event is scheduled.
    #[test]
    fn adaptive_promotes_on_large_reservation() {
        let mut sim = Simulation::with_queue(Recorder::default(), QueueKind::Adaptive);
        assert!(sim.queue_stats().is_none());
        sim.reserve_events(PROMOTE_PENDING / 2);
        assert!(sim.queue_stats().is_none(), "small reservations stay on the heap");
        sim.reserve_events(PROMOTE_PENDING + 1);
        assert!(sim.queue_stats().is_some(), "large reservations promote up front");
        sim.schedule_at(SimTime::from_millis(1.0), Ev::Mark(1));
        sim.run();
        assert_eq!(sim.model().seen, vec![(SimTime::from_millis(1.0), 1)]);
    }

    /// Events stamped from a reserved block win FIFO ties against events
    /// scheduled *after* the reservation, even when the block-stamped
    /// schedule calls happen later in real order — the property the
    /// streaming submission driver relies on.
    #[test]
    fn reserved_seq_block_reproduces_up_front_order() {
        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar, QueueKind::Adaptive] {
            let t = SimTime::from_millis(10.0);
            // Reference: everything scheduled up front, in FIFO order.
            let mut up_front = Simulation::with_queue(Recorder::default(), kind);
            for id in 0..5 {
                up_front.schedule_at(t, Ev::Mark(id));
            }
            up_front.schedule_at(t, Ev::Mark(100));
            up_front.run();

            // Interleaved: reserve the first five seqs, schedule the late
            // event first, then fill in the reserved block.
            let mut interleaved = Simulation::with_queue(Recorder::default(), kind);
            let mut block = interleaved.reserve_seq_block(5);
            interleaved.schedule_at(t, Ev::Mark(100));
            for id in 0..5 {
                interleaved.schedule_at_with_seq(t, block.take(), Ev::Mark(id));
            }
            assert_eq!(block.remaining(), 0);
            interleaved.run();
            assert_eq!(up_front.model().seen, interleaved.model().seen, "backend {kind:?}");
        }
    }

    #[test]
    fn into_model_returns_state() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::ZERO, Ev::Mark(7));
        sim.run();
        let model = sim.into_model();
        assert_eq!(model.seen, vec![(SimTime::ZERO, 7)]);
    }

    /// Promotion is one-way and counted: an adaptive run that crosses the
    /// threshold (by pushes or by one bulk reservation) promotes exactly
    /// once, and the non-adaptive backends never promote.
    #[test]
    fn promotions_counted_exactly_once() {
        let mut by_push = Simulation::with_queue(Recorder::default(), QueueKind::Adaptive);
        for id in 0..(PROMOTE_PENDING + 100) as u32 {
            by_push.schedule_at(SimTime::from_millis(f64::from(id)), Ev::Mark(id));
        }
        assert_eq!(by_push.promotions(), 1);
        by_push.run();
        assert_eq!(by_push.promotions(), 1, "draining never re-promotes");

        let mut by_reserve = Simulation::with_queue(Recorder::default(), QueueKind::Adaptive);
        by_reserve.reserve_events(PROMOTE_PENDING + 1);
        assert_eq!(by_reserve.promotions(), 1);
        by_reserve.reserve_events(PROMOTE_PENDING + 1);
        assert_eq!(by_reserve.promotions(), 1, "an already-promoted queue stays promoted");

        for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
            let mut sim = Simulation::with_queue(Recorder::default(), kind);
            sim.reserve_events(PROMOTE_PENDING * 2);
            sim.schedule_at(SimTime::ZERO, Ev::Mark(0));
            sim.run();
            assert_eq!(sim.promotions(), 0, "backend {kind:?}");
        }
    }

    /// A `reserve` on an adaptive queue that already holds events must
    /// forward pending + additional as the wheel-sizing hint: a backlog
    /// just under the threshold plus a small reservation still promotes.
    #[test]
    fn reserve_hint_counts_existing_backlog() {
        let mut sim = Simulation::with_queue(Recorder::default(), QueueKind::Adaptive);
        for id in 0..PROMOTE_PENDING as u32 {
            sim.schedule_at(SimTime::from_millis(f64::from(id)), Ev::Mark(id));
        }
        assert!(sim.queue_stats().is_none(), "exactly at threshold stays on the heap");
        sim.reserve_events(1);
        assert!(sim.queue_stats().is_some(), "backlog + reservation crosses the threshold");
        assert_eq!(sim.promotions(), 1);
    }

    impl crate::profile::EventClass for Ev {
        const CLASS_NAMES: &'static [&'static str] = &["mark", "chain"];

        fn class(&self) -> usize {
            match self {
                Ev::Mark(_) => 0,
                Ev::Chain(_) => 1,
            }
        }
    }

    /// The instrumented loop attributes every dispatched event to its
    /// class and the attributed time telescopes to the loop wall time.
    #[test]
    fn profiler_counts_every_event_and_covers_loop_time() {
        let mut sim = Simulation::new(Recorder::default());
        sim.enable_event_profiling();
        sim.schedule_at(SimTime::ZERO, Ev::Chain(50));
        for id in 0..10 {
            sim.schedule_at(SimTime::from_millis(f64::from(id)), Ev::Mark(id));
        }
        sim.run_until(SimTime::from_millis(5.0));
        sim.run();
        let profile = sim.event_profile().expect("profiling enabled");
        assert_eq!(profile.total_events(), sim.processed());
        assert_eq!(profile.count, [10, 51]);
        assert!(profile.loop_ns > 0);
        assert!(profile.total_ns() <= profile.loop_ns, "attribution cannot exceed wall");
        assert!(profile.coverage() > 0.5, "coverage {} too low", profile.coverage());
    }

    /// Profiled and unprofiled runs dispatch identically — profiling only
    /// observes, never perturbs.
    #[test]
    fn profiled_run_is_bit_identical() {
        let run = |profiled: bool| {
            let mut sim = Simulation::new(Recorder::default());
            if profiled {
                sim.enable_event_profiling();
            }
            sim.schedule_at(SimTime::ZERO, Ev::Chain(40));
            sim.schedule_at(SimTime::from_millis(3.0), Ev::Mark(99));
            sim.run_until(SimTime::from_millis(20.0));
            sim.run();
            sim.into_model().seen
        };
        assert_eq!(run(false), run(true));
    }
}
