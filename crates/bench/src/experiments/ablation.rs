//! Ablations beyond the paper's figures.
//!
//! Two studies that DESIGN.md calls out:
//!
//! 1. **Scheduling-policy trade-off** (the paper's Obs 7 "promising
//!    optimization space"): latency vs. resource cost (instances spawned)
//!    for the three observed policies plus our `CostAware` extension,
//!    across function execution times.
//! 2. **Mechanism knockouts**: disable one calibrated mechanism at a time
//!    (AWS image cache, AWS LB misses, Google boot/fetch overlap) and show
//!    the corresponding paper observation disappears — evidence the
//!    reproduction is mechanistic rather than curve-fitted.

use faas_sim::cloud::CloudSim;
use faas_sim::config::{ProviderConfig, ScalePolicy};
use faas_sim::spec::FunctionSpec;
use providers::profiles::{aws_like, google_like};
use simkit::time::SimTime;
use stats::summary::Summary;
use stats::table::{fmt_latency, TextTable};
use stellar_core::protocols::{bursty_invocations, cold_invocations, BurstIat, ColdSetup};

use crate::report::Report;

/// One policy × exec-time cell of the trade-off study.
#[derive(Debug, Clone)]
pub struct PolicyCell {
    /// Policy label.
    pub policy: &'static str,
    /// Function execution time, ms.
    pub exec_ms: f64,
    /// Latency summary of a 100-burst against a cold function.
    pub summary: Summary,
    /// Instances spawned to serve the burst (resource cost).
    pub spawns: u64,
    /// Active-instance seconds consumed (provider-side capacity cost).
    pub instance_seconds: f64,
    /// Busy/lifetime utilisation of the fleet.
    pub utilization: f64,
}

/// Runs one cold 100-burst under `policy` and returns latency + cost.
fn run_policy_burst(
    policy: ScalePolicy,
    exec_ms: f64,
    seed: u64,
) -> (Summary, faas_sim::ResourceUsage) {
    let mut cfg = aws_like();
    cfg.scaling.policy = policy;
    // Neutralise AWS-specific burst artefacts so only the policy differs.
    cfg.dispatch.miss_prob = 0.0;
    let mut cloud = CloudSim::new(cfg, seed);
    let f = cloud
        .deploy(FunctionSpec::builder("ablate").exec_constant_ms(exec_ms).build())
        .expect("deploy");
    for i in 0..100u64 {
        cloud.submit(f, i, SimTime::ZERO);
    }
    cloud.run_until(SimTime::from_secs(4000.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 100, "all burst requests complete");
    let latencies: Vec<f64> = done.iter().map(|c| c.latency_ms()).collect();
    let usage = cloud.resource_usage(f);
    (Summary::from_samples(&latencies), usage)
}

/// A labelled policy constructor for the trade-off grid.
type PolicyMaker = (&'static str, fn(f64) -> ScalePolicy);

/// The policy/exec grid.
pub fn policy_tradeoff(seed: u64) -> Vec<PolicyCell> {
    let policies: [PolicyMaker; 4] = [
        ("per_request(aws)", |_| ScalePolicy::PerRequest),
        ("target_conc4(google)", |_| ScalePolicy::TargetConcurrency { target: 4.0 }),
        ("periodic(azure)", |_| ScalePolicy::Periodic { interval_ms: 7000.0, step: 1 }),
        ("cost_aware(ours)", |_| ScalePolicy::CostAware { cold_estimate_ms: 450.0 }),
    ];
    let mut cells = Vec::new();
    for &exec_ms in &[0.0, 100.0, 1000.0, 5000.0] {
        for (label, make) in policies {
            let (summary, usage) = run_policy_burst(make(exec_ms), exec_ms, seed);
            cells.push(PolicyCell {
                policy: label,
                exec_ms,
                summary,
                spawns: usage.spawns,
                instance_seconds: usage.instance_seconds,
                utilization: usage.utilization(),
            });
        }
    }
    cells
}

/// One mechanism-knockout comparison.
#[derive(Debug, Clone)]
pub struct Knockout {
    /// What was disabled.
    pub mechanism: &'static str,
    /// The paper observation it supports.
    pub observation: &'static str,
    /// Headline metric with the mechanism on.
    pub with_ms: f64,
    /// Headline metric with the mechanism off.
    pub without_ms: f64,
}

fn long_burst_median(cfg: ProviderConfig, seed: u64) -> f64 {
    bursty_invocations(cfg, BurstIat::Long, 100, 0.0, 2000, 3, seed)
        .expect("burst run")
        .summary
        .median
}

fn short_burst_p99(cfg: ProviderConfig, seed: u64) -> f64 {
    bursty_invocations(cfg, BurstIat::Short, 100, 0.0, 2000, 1, seed)
        .expect("burst run")
        .summary
        .tail
}

fn image100_median(cfg: ProviderConfig, seed: u64) -> f64 {
    cold_invocations(
        cfg,
        ColdSetup {
            runtime: faas_sim::types::Runtime::Go,
            deployment: faas_sim::types::DeploymentMethod::Zip,
            extra_image_mb: 100.0,
        },
        800,
        100,
        seed,
    )
    .expect("cold run")
    .summary
    .median
}

/// Runs the three knockouts.
pub fn knockouts(seed: u64) -> Vec<Knockout> {
    let mut out = Vec::new();

    // 1. AWS image cache → long-IAT bursts faster than singles (§VI-D2).
    let mut no_cache = aws_like();
    no_cache.image_store.cache.enabled = false;
    out.push(Knockout {
        mechanism: "aws image cache",
        observation: "long-IAT bursts faster than individual colds",
        with_ms: long_burst_median(aws_like(), seed),
        without_ms: long_burst_median(no_cache, seed),
    });

    // 2. AWS LB misses → warm-burst tails reach cold territory (§VI-D1).
    let mut no_miss = aws_like();
    no_miss.dispatch.miss_prob = 0.0;
    out.push(Knockout {
        mechanism: "aws lb misses",
        observation: "warm-burst p99 in cold territory (Table I TR 11)",
        with_ms: short_burst_p99(aws_like(), seed),
        without_ms: short_burst_p99(no_miss, seed),
    });

    // 3. Google boot/fetch overlap → image-size insensitivity (§VI-B2).
    let mut no_overlap = google_like();
    no_overlap.cold_start.fetch_overlaps_boot = false;
    out.push(Knockout {
        mechanism: "google boot/fetch overlap",
        observation: "cold start insensitive to +100MB image",
        with_ms: image100_median(google_like(), seed),
        without_ms: image100_median(no_overlap, seed),
    });

    out
}

/// Renders both studies as one report.
pub fn report(seed: u64) -> Report {
    let mut body = String::from("Policy trade-off: cold 100-burst latency vs instances spawned\n");
    let mut table = TextTable::new(vec![
        "exec_ms",
        "policy",
        "median_ms",
        "p99_ms",
        "spawns",
        "inst_sec",
        "util",
    ]);
    for cell in policy_tradeoff(seed) {
        table.row(vec![
            format!("{}", cell.exec_ms),
            cell.policy.to_string(),
            fmt_latency(cell.summary.median),
            fmt_latency(cell.summary.tail),
            cell.spawns.to_string(),
            format!("{:.1}", cell.instance_seconds),
            format!("{:.2}", cell.utilization),
        ]);
    }
    body.push_str(&table.render());
    body.push_str("\nMechanism knockouts (what breaks when a mechanism is removed):\n");
    let mut table = TextTable::new(vec!["mechanism", "supports", "with", "without"]);
    for k in knockouts(seed) {
        table.row(vec![
            k.mechanism.to_string(),
            k.observation.to_string(),
            fmt_latency(k.with_ms),
            fmt_latency(k.without_ms),
        ]);
    }
    body.push_str(&table.render());
    Report {
        id: "ablation",
        title: "Scheduling-policy trade-off and mechanism knockouts (extensions)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_aware_adapts_to_execution_time() {
        // The Obs 7 balance: for short functions the cost-aware policy
        // queues (cheap, still below the cold-start delay); for long
        // functions queueing would cost more than a cold start, so it
        // converges to per-request spawning (fast).
        let cells = policy_tradeoff(3);
        let get = |policy: &str, exec: f64| {
            cells
                .iter()
                .find(|c| c.policy.starts_with(policy) && c.exec_ms == exec)
                .unwrap()
                .clone()
        };
        // 100 ms functions: big resource savings at modest latency cost.
        let per_request = get("per_request", 100.0);
        let periodic = get("periodic", 100.0);
        let cost_aware = get("cost_aware", 100.0);
        assert!(
            cost_aware.spawns <= per_request.spawns / 2,
            "resource savings: {} vs {}",
            cost_aware.spawns,
            per_request.spawns
        );
        assert!(
            cost_aware.summary.median < 2.0 * per_request.summary.median,
            "bounded latency cost: {} vs {}",
            cost_aware.summary.median,
            per_request.summary.median
        );
        assert!(cost_aware.summary.median < periodic.summary.median);
        // 1 s functions: queueing is never worth it; behave like AWS.
        let ca_1s = get("cost_aware", 1000.0);
        let pr_1s = get("per_request", 1000.0);
        assert!(ca_1s.spawns >= 90, "per-request regime: {}", ca_1s.spawns);
        assert!(ca_1s.summary.median < 1.3 * pr_1s.summary.median);
        // ~0 ms functions: one instance absorbs the whole burst.
        let ca_zero = get("cost_aware", 0.0);
        assert!(ca_zero.spawns < 10, "queue-heavy at exec 0: {}", ca_zero.spawns);
    }

    #[test]
    fn knockouts_remove_their_observations() {
        let ks = knockouts(4);
        // Cache knockout: long bursts stop being faster (median rises).
        assert!(ks[0].without_ms > 1.2 * ks[0].with_ms, "{:?}", ks[0]);
        // Miss knockout: warm-burst p99 collapses out of cold territory.
        assert!(ks[1].without_ms < 0.7 * ks[1].with_ms, "{:?}", ks[1]);
        // Overlap knockout: +100MB cold start inflates.
        assert!(ks[2].without_ms > 1.3 * ks[2].with_ms, "{:?}", ks[2]);
        assert!(report(4).render().contains("knockouts"));
    }
}
