//! Instrumented FIFO queues.
//!
//! [`FifoQueue`] records arrival timestamps so that the simulator can
//! account queueing delay per item (e.g. invocations buffered at the load
//! balancer while the cluster scheduler spawns new instances, paper Fig 1
//! step ③). Timestamps and payloads live in parallel deques
//! (structure-of-arrays): depth checks and wait-time math touch only the
//! dense timestamp array, never the payload bytes.

use std::collections::VecDeque;

use crate::time::SimTime;

/// A FIFO queue that tracks arrival times and high-watermark statistics.
///
/// # Examples
///
/// ```
/// use simkit::queue::FifoQueue;
/// use simkit::time::SimTime;
///
/// let mut q = FifoQueue::new();
/// q.push(SimTime::from_millis(1.0), "a");
/// q.push(SimTime::from_millis(2.0), "b");
/// let first = q.pop(SimTime::from_millis(5.0)).unwrap();
/// assert_eq!(first.item, "a");
/// assert_eq!(first.wait.as_millis(), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct FifoQueue<T> {
    /// Arrival time of `items[i]` is `enqueued_at[i]`.
    enqueued_at: VecDeque<SimTime>,
    items: VecDeque<T>,
    max_len: usize,
    total_enqueued: u64,
}

/// A dequeued item together with the time it spent waiting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dequeued<T> {
    /// The item itself.
    pub item: T,
    /// When the item entered the queue.
    pub enqueued_at: SimTime,
    /// Time spent in the queue.
    pub wait: SimTime,
}

impl<T> FifoQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        FifoQueue {
            enqueued_at: VecDeque::new(),
            items: VecDeque::new(),
            max_len: 0,
            total_enqueued: 0,
        }
    }

    /// Appends an item arriving at time `now`.
    pub fn push(&mut self, now: SimTime, item: T) {
        self.enqueued_at.push_back(now);
        self.items.push_back(item);
        self.total_enqueued += 1;
        self.max_len = self.max_len.max(self.items.len());
    }

    /// Removes the oldest item at time `now`, reporting its waiting time.
    ///
    /// Returns `None` if the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the item's enqueue time (time moving
    /// backwards indicates a simulator bug).
    pub fn pop(&mut self, now: SimTime) -> Option<Dequeued<T>> {
        let enqueued_at = self.enqueued_at.pop_front()?;
        let item = self.items.pop_front().expect("timestamps and items in lockstep");
        assert!(now >= enqueued_at, "dequeue before enqueue");
        Some(Dequeued { wait: now - enqueued_at, enqueued_at, item })
    }

    /// Looks at the oldest item and its arrival time without removing it.
    pub fn peek(&self) -> Option<(SimTime, &T)> {
        let at = *self.enqueued_at.front()?;
        Some((at, self.items.front().expect("timestamps and items in lockstep")))
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Largest length the queue has ever reached.
    pub fn high_watermark(&self) -> usize {
        self.max_len
    }

    /// Total number of items ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Iterates over queued `(arrival, item)` pairs from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &T)> {
        self.enqueued_at.iter().copied().zip(self.items.iter())
    }

    /// Removes and returns all `(arrival, item)` pairs, oldest first.
    pub fn drain(&mut self) -> Vec<(SimTime, T)> {
        self.enqueued_at.drain(..).zip(self.items.drain(..)).collect()
    }
}

impl<T> Default for FifoQueue<T> {
    fn default() -> Self {
        FifoQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_wait_times() {
        let mut q = FifoQueue::new();
        q.push(SimTime::from_millis(0.0), 1u32);
        q.push(SimTime::from_millis(3.0), 2u32);
        let a = q.pop(SimTime::from_millis(10.0)).unwrap();
        assert_eq!(a.item, 1);
        assert_eq!(a.wait, SimTime::from_millis(10.0));
        let b = q.pop(SimTime::from_millis(10.0)).unwrap();
        assert_eq!(b.item, 2);
        assert_eq!(b.wait, SimTime::from_millis(7.0));
        assert!(q.pop(SimTime::from_millis(11.0)).is_none());
    }

    #[test]
    fn statistics_track_watermark_and_totals() {
        let mut q = FifoQueue::new();
        for i in 0..5 {
            q.push(SimTime::from_millis(i as f64), i);
        }
        q.pop(SimTime::from_millis(5.0));
        q.push(SimTime::from_millis(6.0), 99);
        assert_eq!(q.high_watermark(), 5);
        assert_eq!(q.total_enqueued(), 6);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn peek_iter_and_drain_stay_in_lockstep() {
        let mut q = FifoQueue::new();
        q.push(SimTime::ZERO, "x");
        q.push(SimTime::from_millis(1.0), "y");
        assert_eq!(q.peek(), Some((SimTime::ZERO, &"x")));
        let pairs: Vec<(SimTime, &&str)> = q.iter().collect();
        assert_eq!(pairs, vec![(SimTime::ZERO, &"x"), (SimTime::from_millis(1.0), &"y")]);
        let all = q.drain();
        assert_eq!(all, vec![(SimTime::ZERO, "x"), (SimTime::from_millis(1.0), "y")]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "dequeue before enqueue")]
    fn pop_in_past_panics() {
        let mut q = FifoQueue::new();
        q.push(SimTime::from_millis(5.0), ());
        q.pop(SimTime::from_millis(1.0));
    }
}
