//! Streaming quantile estimation with bounded memory.
//!
//! Million-invocation runs cannot afford a `Vec<f64>` of every latency
//! just to read off p50/p99 at the end. [`QuantileSketch`] is a *merging
//! t-digest* (Dunning & Ertl): samples are buffered and periodically
//! compressed into a short list of weighted centroids whose sizes shrink
//! toward the distribution's ends, so extreme quantiles — the ones this
//! project is about — stay sharp while the middle is summarised coarsely.
//! Retained state is O(δ·log n) centroids (the quadratic weight limit
//! keeps the extreme tails at singleton resolution, which costs a
//! logarithmic factor) — about 1.4 k centroids for 10⁶ samples at the
//! default δ = 200, versus the 8 MB a raw `Vec<f64>` would hold.
//!
//! # Exact-mode fallback
//!
//! Below [`QuantileSketch::exact_threshold`] samples (default 1024) the
//! sketch simply keeps every sample and answers quantiles exactly, with
//! the same Hyndman–Fan type-7 interpolation as
//! [`crate::percentile::sorted_percentile`]. Small runs therefore lose
//! nothing; compression only engages when its error bound is tiny
//! relative to the sample count.
//!
//! # Error bound
//!
//! Compression caps the weight of a centroid covering quantile `q` at
//! `4·n·q(1−q)/δ` (the t-digest `k1` scale), so interpolation between
//! centroid midpoints can misplace a quantile estimate by at most about
//! one centroid's worth of rank. The documented guarantee, exposed as
//! [`QuantileSketch::rank_error_bound`] and asserted by this crate's
//! property tests, is a **rank error**:
//!
//! > `quantile(q)` lies between the exact `(q − ε)`- and `(q + ε)`-
//! > quantiles of the recorded samples, where
//! > `ε(q) = 8·q(1−q)/δ + 3/n`.
//!
//! (Interpolating between adjacent centroid midpoints can deviate by up
//! to 1.5 cluster weights of rank, i.e. `6·q(1−q)/δ`; the extra headroom
//! absorbs neighbour clusters sitting at slightly more central quantiles
//! and the ±1-rank effects at the extremes.) With the default δ = 200
//! that is ε(0.5) ≤ 1 % + 3/n in the middle and ε(0.99) ≤ 0.04 % + 3/n
//! at the paper's headline tail — and exactly 0 below the exact
//! threshold. (Rank error is the right contract for a quantile sketch:
//! *value* error additionally depends on the local density of the
//! distribution and is unbounded in general.)
//!
//! # Determinism and merging
//!
//! Everything here is deterministic: buffers are compressed with a stable
//! sort and a fixed left-to-right merge pass, so the same sequence of
//! `record`/`merge` calls always yields the same centroids, bit for bit.
//! [`QuantileSketch::merge`] combines two sketches (used by the sweep
//! runner, which merges per-cell aggregates in cell-index order — making
//! merged reports independent of worker-thread count).

use serde::{Deserialize, Serialize};

use crate::percentile::{sort_samples, sorted_percentile};
use crate::summary::Summary;

/// Default compression factor δ: ~2·δ centroids retained at steady state.
pub const DEFAULT_COMPRESSION: f64 = 200.0;
/// Default sample count below which the sketch stays exact.
pub const DEFAULT_EXACT_THRESHOLD: usize = 1024;
/// Buffered samples between incremental compressions once sketching.
const BUFFER_CAP: usize = 512;

/// How latency quantiles are computed for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QuantileMode {
    /// Keep every sample; quantiles are exact (the default).
    #[default]
    Exact,
    /// Stream samples through a [`QuantileSketch`]; memory is O(δ) and
    /// quantiles carry the documented rank-error bound.
    Sketch,
}

impl QuantileMode {
    /// Parses the CLI spelling (`"exact"` or `"sketch"`).
    pub fn parse(s: &str) -> Option<QuantileMode> {
        match s {
            "exact" => Some(QuantileMode::Exact),
            "sketch" => Some(QuantileMode::Sketch),
            _ => None,
        }
    }

    /// The CLI spelling of this mode.
    pub fn as_str(self) -> &'static str {
        match self {
            QuantileMode::Exact => "exact",
            QuantileMode::Sketch => "sketch",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// A mergeable t-digest quantile sketch; see the module docs for the
/// error bound and determinism guarantees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    compression: f64,
    exact_threshold: usize,
    /// Uncompressed recent samples (all samples, while in exact mode).
    buffer: Vec<f64>,
    /// Weighted centroids, ascending by mean; empty while in exact mode.
    centroids: Vec<Centroid>,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch with the default compression (δ = 200) and exact
    /// threshold (1024 samples).
    pub fn new() -> Self {
        QuantileSketch::with_params(DEFAULT_COMPRESSION, DEFAULT_EXACT_THRESHOLD)
    }

    /// An empty sketch with explicit compression δ (≥ 10) and exact-mode
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `compression` is not finite or below 10 (the error bound
    /// would be meaningless).
    pub fn with_params(compression: f64, exact_threshold: usize) -> Self {
        assert!(compression.is_finite() && compression >= 10.0, "compression too small");
        QuantileSketch {
            compression,
            exact_threshold,
            buffer: Vec::new(),
            centroids: Vec::new(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (NaN-free by construction).
    ///
    /// # Panics
    ///
    /// Panics if the sketch is empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty sketch");
        self.min
    }

    /// Largest recorded sample.
    ///
    /// # Panics
    ///
    /// Panics if the sketch is empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty sketch");
        self.max
    }

    /// Sample count below which quantiles are exact.
    pub fn exact_threshold(&self) -> usize {
        self.exact_threshold
    }

    /// Whether compression has engaged (false ⇒ quantiles are exact).
    pub fn is_sketching(&self) -> bool {
        !self.centroids.is_empty()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn record(&mut self, v: f64) {
        assert!(!v.is_nan(), "NaN latency sample");
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buffer.push(v);
        if self.is_sketching() {
            if self.buffer.len() >= BUFFER_CAP {
                self.compress();
            }
        } else if self.buffer.len() > self.exact_threshold {
            self.compress();
        }
    }

    /// Absorbs all samples recorded by `other`.
    ///
    /// Deterministic: merging the same pair of sketch states always
    /// produces the same result, so reductions that fix their merge order
    /// (like the sweep runner's cell-index merge) are reproducible across
    /// thread counts.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.buffer.extend_from_slice(&other.buffer);
        self.centroids.extend_from_slice(&other.centroids);
        if self.is_sketching() || self.buffer.len() > self.exact_threshold {
            self.compress();
        }
    }

    /// Returns the `q`-quantile estimate. Exact below the threshold;
    /// otherwise within the [`rank_error_bound`](Self::rank_error_bound).
    ///
    /// Takes `&mut self` because pending buffered samples are folded into
    /// the centroids first.
    ///
    /// # Panics
    ///
    /// Panics if the sketch is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty sketch");
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if !self.is_sketching() {
            let mut sorted = self.buffer.clone();
            sort_samples(&mut sorted);
            return sorted_percentile(&sorted, q);
        }
        if !self.buffer.is_empty() {
            self.compress();
        }
        let n = self.count as f64;
        let target = q * n;
        // Interpolate piecewise-linearly between centroid rank midpoints,
        // anchored at min (rank 0) and max (rank n).
        let mut cum = 0.0;
        let mut prev_mid = 0.0;
        let mut prev_mean = self.min;
        for c in &self.centroids {
            let mid = cum + c.weight / 2.0;
            if target < mid {
                let t = if mid > prev_mid { (target - prev_mid) / (mid - prev_mid) } else { 0.0 };
                return (prev_mean + t * (c.mean - prev_mean)).clamp(self.min, self.max);
            }
            prev_mid = mid;
            prev_mean = c.mean;
            cum += c.weight;
        }
        let t = if n > prev_mid { (target - prev_mid) / (n - prev_mid) } else { 1.0 };
        (prev_mean + t * (self.max - prev_mean)).clamp(self.min, self.max)
    }

    /// The documented rank-error guarantee at quantile `q`:
    /// [`quantile`](Self::quantile)`(q)` lies between the exact `(q − ε)`-
    /// and `(q + ε)`-quantiles of the recorded samples. Zero while in
    /// exact mode.
    pub fn rank_error_bound(&self, q: f64) -> f64 {
        if !self.is_sketching() {
            return 0.0;
        }
        8.0 * q * (1.0 - q) / self.compression + 3.0 / self.count as f64
    }

    /// Number of retained centroids (0 while in exact mode). Bounded by
    /// O(δ·log n) — this, plus the fixed-size buffer, is the sketch's
    /// entire memory footprint.
    pub fn centroid_count(&self) -> usize {
        self.centroids.len()
    }

    /// Fraction of recorded samples `<= x` — the empirical CDF.
    ///
    /// Exact below the threshold (bit-identical to [`crate::cdf::Cdf::eval`]
    /// over the same samples, it is the same integer count divided by the
    /// same `n`); once sketching, within the
    /// [`rank_error_bound`](Self::rank_error_bound) at the rank of `x`.
    ///
    /// # Panics
    ///
    /// Panics if the sketch is empty or `x` is NaN (consistent with
    /// `Cdf::eval`: with a NaN every comparison is vacuously false and the
    /// result would silently be 0).
    pub fn cdf(&self, x: f64) -> f64 {
        assert!(self.count > 0, "CDF of empty sketch");
        assert!(!x.is_nan(), "CDF evaluated at NaN");
        self.rank(x, true) / self.count as f64
    }

    /// Estimated number of recorded samples strictly below `x` (0 when
    /// empty). Exact below the threshold; within `n·ε` once sketching.
    ///
    /// This is the primitive the deprecated
    /// [`crate::histogram::LogHistogram`] shim derives bin counts from:
    /// differences of cumulative ranks at the bin edges conserve total
    /// mass by construction, which per-bin estimates would not.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn rank_below(&self, x: f64) -> f64 {
        assert!(!x.is_nan(), "rank of NaN");
        if self.count == 0 {
            return 0.0;
        }
        self.rank(x, false)
    }

    /// Rank of `x`: exact count over the buffered samples plus the
    /// interpolated rank over the compressed ones.
    fn rank(&self, x: f64, inclusive: bool) -> f64 {
        let buffered =
            self.buffer.iter().filter(|&&v| if inclusive { v <= x } else { v < x }).count() as f64;
        buffered + self.centroid_rank(x, inclusive)
    }

    /// Interpolated rank of `x` within the compressed samples only (0
    /// while in exact mode): piecewise linear between centroid rank
    /// midpoints, anchored at `(0, min)` and `(n_compressed, max)` — the
    /// inverse of the interpolation in [`QuantileSketch::quantile`].
    ///
    /// The boundary cases honor `inclusive`: a strict rank at an atom
    /// sitting exactly on min/max (e.g. an all-equal distribution) must
    /// exclude that atom's mass, where the inclusive CDF includes it.
    fn centroid_rank(&self, x: f64, inclusive: bool) -> f64 {
        if self.centroids.is_empty() {
            return 0.0;
        }
        let nc = (self.count - self.buffer.len() as u64) as f64;
        if x < self.min || (!inclusive && x <= self.min) {
            return 0.0;
        }
        if x >= self.max {
            return nc;
        }
        let mut cum = 0.0;
        let mut prev_mid = 0.0;
        let mut prev_mean = self.min;
        for c in &self.centroids {
            let mid = cum + c.weight / 2.0;
            if x < c.mean {
                let t =
                    if c.mean > prev_mean { (x - prev_mean) / (c.mean - prev_mean) } else { 0.0 };
                return (prev_mid + t * (mid - prev_mid)).clamp(0.0, nc);
            }
            prev_mid = mid;
            prev_mean = c.mean;
            cum += c.weight;
        }
        let t = if self.max > prev_mean { (x - prev_mean) / (self.max - prev_mean) } else { 1.0 };
        (prev_mid + t * (nc - prev_mid)).clamp(0.0, nc)
    }

    /// Down-samples the distribution to `n` evenly spaced
    /// `(value, cumulative_prob)` plot points — the sketch-backed
    /// equivalent of [`crate::cdf::Cdf::points`], bit-identical to it
    /// below the exact threshold.
    ///
    /// # Panics
    ///
    /// Panics if the sketch is empty or `n < 2`.
    pub fn quantile_points(&mut self, n: usize) -> Vec<(f64, f64)> {
        assert!(self.count > 0, "plot points of empty sketch");
        assert!(n >= 2, "need at least two plot points");
        if !self.is_sketching() {
            let mut sorted = self.buffer.clone();
            sort_samples(&mut sorted);
            return (0..n)
                .map(|i| {
                    let q = i as f64 / (n - 1) as f64;
                    (sorted_percentile(&sorted, q), q)
                })
                .collect();
        }
        if !self.buffer.is_empty() {
            self.compress();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// Folds buffered samples into the centroid list and re-clusters.
    fn compress(&mut self) {
        sort_samples(&mut self.buffer);
        let mut merged: Vec<Centroid> =
            Vec::with_capacity(self.centroids.len() + self.buffer.len());
        merged.extend(self.buffer.drain(..).map(|v| Centroid { mean: v, weight: 1.0 }));
        merged.append(&mut self.centroids);
        // Stable sort keeps equal-mean centroids in a deterministic order.
        merged.sort_by(|a, b| a.mean.partial_cmp(&b.mean).expect("NaN centroid"));

        let n = self.count as f64;
        let delta = self.compression;
        let mut out: Vec<Centroid> = Vec::with_capacity((2.0 * delta) as usize + 8);
        let mut iter = merged.into_iter();
        let mut cur = iter.next().expect("compress on empty sketch");
        let mut cum = 0.0; // weight strictly before `cur`
        for c in iter {
            let w = cur.weight + c.weight;
            let q_mid = (cum + w / 2.0) / n;
            let limit = (4.0 * n * q_mid * (1.0 - q_mid) / delta).max(1.0);
            if w <= limit {
                // Weighted mean; `cur.mean <= c.mean` so the result stays
                // within the pair's span.
                cur.mean = (cur.mean * cur.weight + c.mean * c.weight) / w;
                cur.weight = w;
            } else {
                cum += cur.weight;
                out.push(cur);
                cur = c;
            }
        }
        out.push(cur);
        self.centroids = out;
    }
}

/// Streaming latency aggregate: a quantile sketch plus the moment sums
/// needed to reproduce a [`Summary`] without retaining samples.
///
/// This is what flows through the client, experiment, and sweep layers on
/// large runs: O(δ) memory however many invocations are recorded, and
/// mergeable across sweep cells. In exact mode (small runs, or
/// `keep_samples`) the figure pipelines keep using raw sample vectors and
/// this aggregate is simply a cheap companion.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyAgg {
    sketch: QuantileSketch,
    sum: f64,
    sumsq: f64,
}

impl LatencyAgg {
    /// An empty aggregate with default sketch parameters.
    pub fn new() -> Self {
        LatencyAgg::default()
    }

    /// An empty aggregate with an explicit quantile mode: `Exact` uses a
    /// threshold no run exceeds (quantiles stay exact at any size, memory
    /// O(n)); `Sketch` uses the default compression.
    pub fn with_mode(mode: QuantileMode) -> Self {
        match mode {
            QuantileMode::Exact => LatencyAgg {
                sketch: QuantileSketch::with_params(DEFAULT_COMPRESSION, usize::MAX),
                ..Default::default()
            },
            QuantileMode::Sketch => LatencyAgg::new(),
        }
    }

    /// Builds an exact-mode aggregate from a sample slice in one call —
    /// the bridge for figure pipelines that start from raw samples:
    /// quantiles, CDF points, and summaries all come out bit-identical to
    /// the historical sample-vector paths.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> LatencyAgg {
        let mut agg = LatencyAgg::with_mode(QuantileMode::Exact);
        for &v in samples {
            agg.record(v);
        }
        agg
    }

    /// Records one latency sample (milliseconds, by project convention).
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn record(&mut self, v: f64) {
        self.sketch.record(v);
        self.sum += v;
        self.sumsq += v * v;
    }

    /// Absorbs `other` (deterministic; see [`QuantileSketch::merge`]).
    pub fn merge(&mut self, other: &LatencyAgg) {
        self.sketch.merge(&other.sketch);
        self.sum += other.sum;
        self.sumsq += other.sumsq;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.sketch.count()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// Mean of the recorded samples.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of empty aggregate");
        self.sum / self.count() as f64
    }

    /// Quantile estimate (see [`QuantileSketch::quantile`]).
    pub fn quantile(&mut self, q: f64) -> f64 {
        self.sketch.quantile(q)
    }

    /// Fraction of samples `<= x` (see [`QuantileSketch::cdf`]).
    pub fn cdf(&self, x: f64) -> f64 {
        self.sketch.cdf(x)
    }

    /// CDF plot points (see [`QuantileSketch::quantile_points`]).
    pub fn quantile_points(&mut self, n: usize) -> Vec<(f64, f64)> {
        self.sketch.quantile_points(n)
    }

    /// Smallest recorded sample (see [`QuantileSketch::min`]).
    pub fn min(&self) -> f64 {
        self.sketch.min()
    }

    /// Largest recorded sample (see [`QuantileSketch::max`]).
    pub fn max(&self) -> f64 {
        self.sketch.max()
    }

    /// The sketch's rank-error bound at `q`.
    pub fn rank_error_bound(&self, q: f64) -> f64 {
        self.sketch.rank_error_bound(q)
    }

    /// Shared access to the underlying sketch.
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Builds a [`Summary`] from the aggregate. Quantiles come from the
    /// sketch (exact below the threshold); mean and standard deviation
    /// come from the moment sums, so on very large runs `std` carries the
    /// usual one-pass cancellation caveat (irrelevant at latency scales).
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn summary(&mut self) -> Summary {
        assert!(!self.is_empty(), "summary of empty aggregate");
        if !self.sketch.is_sketching() {
            // Below the threshold the buffer holds every sample, so
            // delegating reproduces the historical exact-mode summary bit
            // for bit (mean/std from the sorted two-pass path rather than
            // the insertion-order moment sums).
            return Summary::from_samples(&self.sketch.buffer);
        }
        let n = self.count();
        let mean = self.mean();
        let var = if n > 1 {
            ((self.sumsq - n as f64 * mean * mean) / (n as f64 - 1.0)).max(0.0)
        } else {
            0.0
        };
        let median = self.quantile(0.5);
        let tail = self.quantile(0.99);
        Summary {
            count: n as usize,
            mean,
            std: var.sqrt(),
            min: self.sketch.min(),
            max: self.sketch.max(),
            p25: self.quantile(0.25),
            median,
            p75: self.quantile(0.75),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            tail,
            p999: self.quantile(0.999),
            tmr: if median > 0.0 { tail / median } else { f64::INFINITY },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::percentile;

    #[test]
    fn exact_below_threshold_matches_percentile() {
        let mut s = QuantileSketch::new();
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        for &x in &xs {
            s.record(x);
        }
        assert!(!s.is_sketching());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), percentile(&xs, q), "q={q}");
            assert_eq!(s.rank_error_bound(q), 0.0);
        }
    }

    #[test]
    fn sketch_mode_engages_past_threshold() {
        let mut s = QuantileSketch::new();
        for i in 0..5000 {
            s.record(i as f64);
        }
        assert!(s.is_sketching());
        assert_eq!(s.count(), 5000);
        assert!(s.centroid_count() < 1000, "centroids: {}", s.centroid_count());
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 4999.0);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 4999.0);
    }

    #[test]
    fn sketch_respects_rank_error_on_uniform_ladder() {
        let mut s = QuantileSketch::new();
        let n = 50_000;
        for i in 0..n {
            s.record(i as f64);
        }
        for q in [0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let est = s.quantile(q);
            let eps = s.rank_error_bound(q);
            // On the ladder the value at rank r is r itself, so rank error
            // is directly readable.
            let lo = ((q - eps) * (n - 1) as f64).floor();
            let hi = ((q + eps) * (n - 1) as f64).ceil();
            assert!(est >= lo && est <= hi, "q={q}: est={est} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn memory_stays_bounded() {
        let mut s = QuantileSketch::new();
        for i in 0..200_000 {
            s.record((i % 9973) as f64);
        }
        // O(δ·log n): empirically ~1.2 k centroids at n = 2e5, δ = 200.
        assert!(s.centroid_count() < 2000, "centroids: {}", s.centroid_count());
        assert!(s.buffer.len() < BUFFER_CAP);
    }

    #[test]
    fn merge_equals_sequential_recording_statistics() {
        let xs: Vec<f64> = (0..30_000u64).map(|i| ((i * 2654435761) % 100_000) as f64).collect();
        let mut whole = QuantileSketch::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < 13_000 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // Merged and sequential sketches need not be identical, but both
        // must satisfy the error bound against the exact quantiles.
        for q in [0.5, 0.99] {
            let eps = a.rank_error_bound(q) + 1.0 / xs.len() as f64;
            let exact_lo = percentile(&xs, (q - eps).max(0.0));
            let exact_hi = percentile(&xs, (q + eps).min(1.0));
            let est = a.quantile(q);
            assert!(est >= exact_lo && est <= exact_hi, "q={q}: {est} vs [{exact_lo}, {exact_hi}]");
        }
    }

    #[test]
    fn merge_is_deterministic() {
        let build = || {
            let mut parts: Vec<QuantileSketch> = Vec::new();
            for p in 0..4u64 {
                let mut s = QuantileSketch::new();
                for i in 0..5_000u64 {
                    s.record(((i * 31 + p * 7) % 4096) as f64);
                }
                parts.push(s);
            }
            let mut acc = QuantileSketch::new();
            for p in &parts {
                acc.merge(p);
            }
            acc
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn exact_sketches_merge_into_exact_when_small() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for i in 0..100 {
            a.record(i as f64);
            b.record((100 + i) as f64);
        }
        a.merge(&b);
        assert!(!a.is_sketching(), "200 samples should stay exact");
        assert_eq!(a.quantile(0.5), 99.5);
    }

    #[test]
    fn agg_summary_matches_exact_on_small_runs() {
        let xs: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let mut agg = LatencyAgg::new();
        for &x in &xs {
            agg.record(x);
        }
        let s = agg.summary();
        let exact = Summary::from_samples(&xs);
        assert_eq!(s.count, exact.count);
        assert_eq!(s.median, exact.median);
        assert_eq!(s.tail, exact.tail);
        assert_eq!(s.min, exact.min);
        assert_eq!(s.max, exact.max);
        assert!((s.mean - exact.mean).abs() < 1e-9);
        assert!((s.std - exact.std).abs() < 1e-9);
    }

    #[test]
    fn exact_mode_agg_never_sketches() {
        let mut agg = LatencyAgg::with_mode(QuantileMode::Exact);
        for i in 0..10_000 {
            agg.record(i as f64);
        }
        assert!(!agg.sketch().is_sketching());
        assert_eq!(
            agg.quantile(0.5),
            percentile(&(0..10_000).map(|i| i as f64).collect::<Vec<_>>(), 0.5)
        );
    }

    #[test]
    fn serde_round_trip() {
        let mut s = QuantileSketch::new();
        for i in 0..3000 {
            s.record((i % 71) as f64);
        }
        let json = serde_json::to_string(&s).unwrap();
        let mut back: QuantileSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count(), s.count());
        assert_eq!(back.quantile(0.5), s.quantile(0.5));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_record_panics() {
        QuantileSketch::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_quantile_panics() {
        QuantileSketch::new().quantile(0.5);
    }

    // Edge-case contract: empty panics, a single sample and all-equal
    // samples answer exactly, q = 0/1 pin min/max — never NaN. These are
    // the cases the histogram retirement routes every figure through.

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_cdf_panics() {
        QuantileSketch::new().cdf(1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_panics() {
        LatencyAgg::new().summary();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_out_of_range_panics() {
        let mut s = QuantileSketch::new();
        s.record(1.0);
        s.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cdf_of_nan_panics() {
        let mut s = QuantileSketch::new();
        s.record(1.0);
        s.cdf(f64::NAN);
    }

    #[test]
    fn single_sample_is_exact_everywhere() {
        let mut agg = LatencyAgg::new();
        agg.record(42.0);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(agg.quantile(q), 42.0, "q={q}");
        }
        let s = agg.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.p999, 42.0);
        assert_eq!(agg.cdf(41.9), 0.0);
        assert_eq!(agg.cdf(42.0), 1.0);
    }

    #[test]
    fn all_equal_samples_answer_exactly_even_when_sketching() {
        let mut s = QuantileSketch::new();
        for _ in 0..10_000 {
            s.record(7.5);
        }
        assert!(s.is_sketching());
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let v = s.quantile(q);
            assert_eq!(v, 7.5, "q={q}");
            assert!(!v.is_nan());
        }
        assert_eq!(s.cdf(7.5), 1.0);
        assert_eq!(s.cdf(7.4), 0.0);
        assert_eq!(s.rank_below(7.5), 0.0);
        assert_eq!(s.rank_below(7.6), 10_000.0);
    }

    #[test]
    fn extreme_quantiles_pin_min_max_when_sketching() {
        let mut s = QuantileSketch::new();
        for i in 0..50_000u64 {
            s.record(((i * 2654435761) % 100_000) as f64 / 7.0);
        }
        assert!(s.is_sketching());
        assert_eq!(s.quantile(0.0), s.min());
        assert_eq!(s.quantile(1.0), s.max());
    }

    #[test]
    fn cdf_matches_exact_cdf_below_threshold() {
        let xs = [1.0, 1.0, 1.0, 2.0, 5.0, 9.0];
        let mut s = QuantileSketch::new();
        for &x in &xs {
            s.record(x);
        }
        let cdf = crate::cdf::Cdf::from_samples(&xs);
        for x in [0.5, 1.0, 1.5, 2.0, 7.0, 9.0, 100.0] {
            assert_eq!(s.cdf(x).to_bits(), cdf.eval(x).to_bits(), "x={x}");
        }
        assert_eq!(s.rank_below(1.0), 0.0);
        assert_eq!(s.rank_below(1.5), 3.0);
    }

    #[test]
    fn cdf_respects_rank_error_when_sketching() {
        let n = 50_000;
        let mut s = QuantileSketch::new();
        for i in 0..n {
            s.record(i as f64);
        }
        for x in [100.0, 5_000.0, 25_000.0, 49_000.0, 49_950.0] {
            let est = s.cdf(x);
            let exact = (x + 1.0) / n as f64; // ladder: #samples <= x
            let eps = s.rank_error_bound(exact) + 3.0 / n as f64;
            assert!((est - exact).abs() <= eps, "x={x}: est {est} vs exact {exact} (eps {eps})");
        }
    }

    #[test]
    fn quantile_points_match_cdf_points_below_threshold() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 7919) % 500) as f64).collect();
        let mut s = QuantileSketch::new();
        for &x in &xs {
            s.record(x);
        }
        let pts = s.quantile_points(120);
        let cdf_pts = crate::cdf::Cdf::from_samples(&xs).points(120);
        assert_eq!(pts, cdf_pts);
    }

    #[test]
    fn quantile_points_are_monotone_when_sketching() {
        let mut s = QuantileSketch::new();
        for i in 0..20_000u64 {
            s.record(((i * 31) % 9973) as f64);
        }
        let pts = s.quantile_points(50);
        assert_eq!(pts.len(), 50);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0, "values must be non-decreasing: {pts:?}");
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[49].1, 1.0);
    }

    #[test]
    fn summary_delegates_to_exact_path_below_threshold() {
        let xs: Vec<f64> = (0..300).map(|i| ((i * 37) % 100) as f64 + 0.25).collect();
        let mut agg = LatencyAgg::new();
        for &x in &xs {
            agg.record(x);
        }
        let from_agg = agg.summary();
        let exact = Summary::from_samples(&xs);
        assert_eq!(from_agg.mean.to_bits(), exact.mean.to_bits());
        assert_eq!(from_agg.std.to_bits(), exact.std.to_bits());
        assert_eq!(from_agg, exact);
    }
}
