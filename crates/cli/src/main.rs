//! `stellar` — see [`stellar_cli`] for the library behind this binary.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match stellar_cli::parse_args(&args) {
        Ok(command) => command,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    match stellar_cli::execute(&command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
