//! SLO planner: given a p99 latency objective, find the largest burst each
//! provider can absorb — capacity planning for flash-crowd traffic like
//! the click storms the paper's introduction motivates.
//!
//! ```bash
//! cargo run --release -p stellar-examples --bin slo_planner [p99_ms]
//! ```

use providers::paper::ProviderKind;
use providers::profiles::config_for;
use stats::table::{fmt_latency, TextTable};
use stellar_core::protocols::{bursty_invocations, BurstIat};

const BURSTS: [u32; 6] = [1, 50, 100, 200, 300, 500];

fn p99_at(kind: ProviderKind, burst: u32) -> f64 {
    bursty_invocations(config_for(kind), BurstIat::Short, burst, 0.0, 2000.max(burst * 6), 1, 11)
        .expect("burst run")
        .summary
        .tail
}

fn main() {
    let slo_ms: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(500.0);
    println!("Planning for a p99 SLO of {slo_ms} ms on warm bursty traffic.\n");

    let mut table = TextTable::new(vec!["burst", "aws p99", "google p99", "azure p99"]);
    let mut max_ok = [0u32; 3];
    let mut grid = Vec::new();
    for &burst in &BURSTS {
        let mut row = vec![burst.to_string()];
        for (i, kind) in ProviderKind::ALL.iter().enumerate() {
            let p99 = p99_at(*kind, burst);
            if p99 <= slo_ms {
                max_ok[i] = max_ok[i].max(burst);
            }
            row.push(fmt_latency(p99));
            grid.push((kind.label(), burst, p99));
        }
        table.row(row);
    }
    println!("{}", table.render());

    println!("Largest measured burst meeting the SLO:");
    for (i, kind) in ProviderKind::ALL.iter().enumerate() {
        match max_ok[i] {
            0 => println!("  {kind}: none — even single requests miss the SLO"),
            b => println!("  {kind}: {b} simultaneous requests"),
        }
    }
    println!();
    println!("The paper's Obs 5 predicts the ordering: Google degrades least with");
    println!("burst size, AWS moderately, Azure most (its dispatch path serialises).");
}
