//! Resource accounting: the cost side of the latency/cost trade-off.
//!
//! Serverless billing is pay-per-use (GB-seconds of busy instances, §II-A)
//! while the *provider's* cost follows instance lifetime. Obs 7 frames
//! scheduling policy as a balance between request completion time and the
//! number of active instances; [`ResourceUsage`] quantifies that second
//! axis so experiments (and the ablation harness) can report both.

use simkit::time::SimTime;

/// Accumulated resource usage of one function's fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceUsage {
    /// Total instance lifetime (boot completion → reap/now), seconds.
    /// Tracks the provider's capacity cost.
    pub instance_seconds: f64,
    /// Total busy time across instances, seconds. Tracks the user's
    /// pay-per-use bill (× memory = GB-seconds).
    pub busy_seconds: f64,
    /// Instances spawned.
    pub spawns: u64,
    /// Requests served.
    pub requests: u64,
}

impl ResourceUsage {
    /// Fleet utilisation: busy time over lifetime (0 when no lifetime).
    pub fn utilization(&self) -> f64 {
        if self.instance_seconds > 0.0 {
            self.busy_seconds / self.instance_seconds
        } else {
            0.0
        }
    }

    /// Billed compute per request, milliseconds (0 when no requests).
    pub fn busy_ms_per_request(&self) -> f64 {
        if self.requests > 0 {
            self.busy_seconds * 1000.0 / self.requests as f64
        } else {
            0.0
        }
    }
}

/// Tracks lifetime/busy integrals for one function's instances.
#[derive(Debug, Default)]
pub(crate) struct UsageTracker {
    usage: ResourceUsage,
    /// Per-instance (alive_since, busy_since) markers; `None` when not in
    /// that state. Indexed like the instance vector.
    marks: Vec<InstanceMarks>,
}

#[derive(Debug, Clone, Copy, Default)]
struct InstanceMarks {
    alive_since: Option<SimTime>,
    busy_since: Option<SimTime>,
}

impl UsageTracker {
    pub(crate) fn on_spawn(&mut self) {
        self.usage.spawns += 1;
        self.marks.push(InstanceMarks::default());
    }

    pub(crate) fn on_boot_complete(&mut self, idx: usize, now: SimTime) {
        self.marks[idx].alive_since = Some(now);
    }

    pub(crate) fn on_assign(&mut self, idx: usize, now: SimTime) {
        self.usage.requests += 1;
        self.marks[idx].busy_since = Some(now);
    }

    pub(crate) fn on_release(&mut self, idx: usize, now: SimTime) {
        if let Some(since) = self.marks[idx].busy_since.take() {
            self.usage.busy_seconds += (now - since).as_secs();
        }
    }

    pub(crate) fn on_reap(&mut self, idx: usize, now: SimTime) {
        if let Some(since) = self.marks[idx].alive_since.take() {
            self.usage.instance_seconds += (now - since).as_secs();
        }
    }

    /// Usage snapshot with still-alive instances accounted up to `now`.
    pub(crate) fn snapshot(&self, now: SimTime) -> ResourceUsage {
        let mut usage = self.usage;
        for marks in &self.marks {
            if let Some(since) = marks.alive_since {
                usage.instance_seconds += now.saturating_sub(since).as_secs();
            }
            if let Some(since) = marks.busy_since {
                usage.busy_seconds += now.saturating_sub(since).as_secs();
            }
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: fn(f64) -> SimTime = SimTime::from_secs;

    #[test]
    fn lifetime_and_busy_integrals() {
        let mut t = UsageTracker::default();
        t.on_spawn();
        t.on_boot_complete(0, S(1.0));
        t.on_assign(0, S(2.0));
        t.on_release(0, S(3.5));
        t.on_reap(0, S(10.0));
        let u = t.snapshot(S(20.0));
        assert!((u.instance_seconds - 9.0).abs() < 1e-9);
        assert!((u.busy_seconds - 1.5).abs() < 1e-9);
        assert_eq!(u.spawns, 1);
        assert_eq!(u.requests, 1);
        assert!((u.utilization() - 1.5 / 9.0).abs() < 1e-9);
        assert!((u.busy_ms_per_request() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_accounts_live_instances() {
        let mut t = UsageTracker::default();
        t.on_spawn();
        t.on_boot_complete(0, S(0.0));
        t.on_assign(0, S(1.0));
        // Still alive & busy at snapshot time.
        let u = t.snapshot(S(4.0));
        assert!((u.instance_seconds - 4.0).abs() < 1e-9);
        assert!((u.busy_seconds - 3.0).abs() < 1e-9);
        // Snapshot is non-destructive.
        let again = t.snapshot(S(5.0));
        assert!((again.instance_seconds - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_usage_is_zero() {
        let u = ResourceUsage::default();
        assert_eq!(u.utilization(), 0.0);
        assert_eq!(u.busy_ms_per_request(), 0.0);
    }

    #[test]
    fn multiple_instances_accumulate() {
        let mut t = UsageTracker::default();
        for i in 0..3 {
            t.on_spawn();
            t.on_boot_complete(i, S(0.0));
        }
        t.on_reap(0, S(2.0));
        t.on_reap(1, S(3.0));
        let u = t.snapshot(S(5.0));
        // 2 + 3 + 5 (third still alive) = 10.
        assert!((u.instance_seconds - 10.0).abs() < 1e-9);
        assert_eq!(u.spawns, 3);
    }
}
