//! Calibration report: run every paper experiment against the profiles and
//! print paper-vs-measured. Used while tuning the provider profiles;
//! `cargo run -p stellar-providers --example calibrate --release`.

use faas_sim::types::{DeploymentMethod, Runtime, TransferMode};
use providers::paper::{self, ProviderKind};
use providers::profiles::config_for;
use stellar_core::protocols::{
    bursty_invocations, cold_invocations, transfer_chain, warm_invocations, BurstIat, ColdSetup,
};

fn row(name: &str, paper_med: f64, med: f64, paper_p99: f64, p99: f64) {
    let dm = if paper_med.is_finite() {
        format!("{:+.0}%", (med / paper_med - 1.0) * 100.0)
    } else {
        "-".into()
    };
    let dt = if paper_p99.is_finite() {
        format!("{:+.0}%", (p99 / paper_p99 - 1.0) * 100.0)
    } else {
        "-".into()
    };
    println!(
        "{name:<38} med {med:>8.1} (paper {paper_med:>8.1} {dm:>6})   p99 {p99:>8.1} (paper {paper_p99:>8.1} {dt:>6})"
    );
}

fn main() {
    let samples = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1000u32);

    for kind in ProviderKind::ALL {
        let cfg = config_for(kind);
        println!("==== {kind} ====");

        // E1 warm
        let warm = warm_invocations(cfg.clone(), samples, 11).unwrap();
        let (pm, pt) = paper::warm_internal_ms(kind);
        let rtt = kind.prop_one_way_ms() * 2.0;
        row("warm (observed)", pm + rtt, warm.summary.median, pt + rtt, warm.summary.tail);

        // E2 cold baseline
        let cold = cold_invocations(cfg.clone(), ColdSetup::baseline(), samples, 100, 12).unwrap();
        let (cm, ctmr) = paper::cold_observed_ms(kind);
        row("cold python zip", cm, cold.summary.median, cm * ctmr, cold.summary.tail);

        // E3 image size (Go zip +10 / +100 MB)
        for (mb, idx) in [(10.0, 0usize), (100.0, 1)] {
            let setup = ColdSetup {
                runtime: Runtime::Go,
                deployment: DeploymentMethod::Zip,
                extra_image_mb: mb,
            };
            let out = cold_invocations(cfg.clone(), setup, samples, 100, 13).unwrap();
            let (m10, m100, t100) = paper::image_size_observed_ms(kind);
            let (p_med, p_tail) = if idx == 0 { (m10, f64::NAN) } else { (m100, t100) };
            row(
                &format!("cold go zip +{mb}MB"),
                p_med,
                out.summary.median,
                p_tail,
                out.summary.tail,
            );
        }

        // E4 runtimes/deployments (AWS only in the paper)
        if kind == ProviderKind::Aws {
            for (runtime, deployment, target) in [
                (Runtime::Go, DeploymentMethod::Zip, paper::fig5_aws::GO_ZIP),
                (Runtime::Python3, DeploymentMethod::Zip, paper::fig5_aws::PYTHON_ZIP),
                (Runtime::Go, DeploymentMethod::Container, paper::fig5_aws::GO_CONTAINER),
                (Runtime::Python3, DeploymentMethod::Container, paper::fig5_aws::PYTHON_CONTAINER),
            ] {
                let setup = ColdSetup { runtime, deployment, extra_image_mb: 0.0 };
                let out = cold_invocations(cfg.clone(), setup, samples, 100, 14).unwrap();
                row(
                    &format!("cold {runtime:?}+{deployment:?}"),
                    target.0,
                    out.summary.median,
                    target.1,
                    out.summary.tail,
                );
            }
        }

        // E5/E6 transfers (AWS + Google in the paper)
        if kind != ProviderKind::Azure {
            for &(bytes, p_med) in paper::inline_transfer_points(kind) {
                let out =
                    transfer_chain(cfg.clone(), TransferMode::Inline, bytes, samples, 15).unwrap();
                let ts = out.transfer_summary.unwrap();
                let p_tail =
                    if bytes == 1_000_000 { p_med * paper::inline_tmr_1mb(kind) } else { f64::NAN };
                row(&format!("inline {bytes}B"), p_med, ts.median, p_tail, ts.tail);
            }
            let (sm, st) = paper::storage_transfer_1mb_ms(kind);
            let out =
                transfer_chain(cfg.clone(), TransferMode::Storage, 1_000_000, samples, 16).unwrap();
            let ts = out.transfer_summary.unwrap();
            row("storage 1MB", sm, ts.median, st, ts.tail);
            // Large-payload effective bandwidth.
            for bytes in [100_000_000u64, 1_000_000_000] {
                let out =
                    transfer_chain(cfg.clone(), TransferMode::Storage, bytes, 200, 17).unwrap();
                let ts = out.transfer_summary.unwrap();
                let eff_mbit = bytes as f64 * 8.0 / 1e6 / (ts.median / 1000.0);
                let (_, target_large) = paper::storage_bandwidth_mbit(kind);
                println!(
                    "storage {bytes}B: eff bw {eff_mbit:.0} Mb/s (paper >=100MB: {target_large} Mb/s)"
                );
            }
        }

        // E7 bursts
        let base = paper::warm_base_observed_ms(kind);
        for burst in [100u32, 500] {
            let out = bursty_invocations(
                cfg.clone(),
                BurstIat::Short,
                burst,
                0.0,
                samples.max(burst * 10),
                1,
                18,
            )
            .unwrap();
            // Table I row "Bursty warm" is burst 100.
            let (pmr, ptr) = match kind {
                ProviderKind::Aws => (2.0, 11.0),
                ProviderKind::Google => (3.0, 5.0),
                ProviderKind::Azure => (5.0, 41.0),
            };
            let (p_med, p_tail) =
                if burst == 100 { (pmr * base, ptr * base) } else { (f64::NAN, f64::NAN) };
            row(
                &format!("burst short {burst}"),
                p_med,
                out.summary.median,
                p_tail,
                out.summary.tail,
            );
        }
        {
            let burst = 100u32;
            let out = bursty_invocations(
                cfg.clone(),
                BurstIat::Long,
                burst,
                0.0,
                samples.max(burst * 10),
                3,
                19,
            )
            .unwrap();
            let (pmr, ptr) = match kind {
                ProviderKind::Aws => (6.0, 12.0),
                ProviderKind::Google => (59.0, 100.0),
                ProviderKind::Azure => (41.0, 58.0),
            };
            row(
                &format!("burst long {burst}"),
                pmr * base,
                out.summary.median,
                ptr * base,
                out.summary.tail,
            );
        }

        // E8 fig9: 1s exec, burst 100, long IAT
        let out =
            bursty_invocations(cfg.clone(), BurstIat::Long, 100, 1000.0, 1000, 3, 20).unwrap();
        let (fm, ft) = paper::fig9_burst100_ms(kind);
        row("fig9 burst100 exec1s", fm, out.summary.median, ft, out.summary.tail);
        println!();
    }
}
