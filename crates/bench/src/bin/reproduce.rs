//! Runs the complete reproduction — every table and figure of the paper's
//! evaluation — and prints the paper-vs-measured reports in order.
//!
//! `--samples N` overrides the per-configuration sample count (default
//! 3000, as in the paper §V). `--figures DIR` additionally renders SVG
//! versions of the headline CDF figures into `DIR`. The output of this
//! binary is the source of `EXPERIMENTS.md`.

use std::time::Instant;

use stats::svg::{SvgLine, SvgLineChart, SvgPlot, SvgSeries};

fn arg_after(flag: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != flag).nth(1)
}

fn main() {
    let samples =
        arg_after("--samples").and_then(|s| s.parse().ok()).unwrap_or(bench::report::PAPER_SAMPLES);
    println!("# STeLLAR reproduction — paper vs measured");
    println!();
    println!(
        "{} samples per configuration; providers: aws-like, google-like, azure-like.",
        samples
    );
    println!();
    let start = Instant::now();
    for report in bench::run_all(samples) {
        println!("{}", report.render());
    }
    println!("{}", bench::experiments::ablation::report(bench::report::BASE_SEED).render());
    println!("{}", bench::experiments::keepalive::report(bench::report::BASE_SEED).render());

    if let Some(dir) = arg_after("--figures") {
        write_figures(&dir, samples);
        eprintln!("figures written to {dir}/");
    }
    eprintln!("total wall-clock: {:.1?}", start.elapsed());
}

/// Renders Fig 3 (warm/cold CDFs) and Fig 9 (policy CDFs) as SVG files.
fn write_figures(dir: &str, samples: u32) {
    std::fs::create_dir_all(dir).expect("create figure directory");
    let fig3 = bench::experiments::fig3::measure(samples);
    let warm: Vec<SvgSeries> =
        fig3.warm.iter().map(|(kind, s)| SvgSeries::new(kind.label(), s.clone())).collect();
    std::fs::write(
        format!("{dir}/fig3a_warm.svg"),
        SvgPlot::cdf("Fig 3a: warm invocations").render(&warm),
    )
    .expect("write fig3a");
    let cold: Vec<SvgSeries> =
        fig3.cold.iter().map(|(kind, s)| SvgSeries::new(kind.label(), s.clone())).collect();
    std::fs::write(
        format!("{dir}/fig3b_cold.svg"),
        SvgPlot::cdf("Fig 3b: cold invocations").render(&cold),
    )
    .expect("write fig3b");

    // Figs 6a/7a: median (solid) and tail (dashed) vs payload, log-log.
    for (name, title, cells) in [
        (
            "fig6a_inline",
            "Fig 6a: inline transfer latency vs payload",
            bench::experiments::fig6::measure(samples).cells,
        ),
        (
            "fig7a_storage",
            "Fig 7a: storage transfer latency vs payload",
            bench::experiments::fig7::measure(samples).cells,
        ),
    ] {
        let mut lines = Vec::new();
        for kind in [providers::paper::ProviderKind::Aws, providers::paper::ProviderKind::Google] {
            let mut medians = Vec::new();
            let mut tails = Vec::new();
            for (k, bytes, samples) in &cells {
                if *k == kind {
                    let s = stats::Summary::from_samples(samples);
                    medians.push((*bytes as f64 / 1000.0, s.median));
                    tails.push((*bytes as f64 / 1000.0, s.tail));
                }
            }
            medians.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite sizes"));
            tails.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite sizes"));
            lines.push(SvgLine::new(format!("{kind} median"), medians));
            lines.push(SvgLine::new(format!("{kind} p99"), tails).dashed());
        }
        std::fs::write(
            format!("{dir}/{name}.svg"),
            SvgLineChart::log_log(title, "payload (KB)", "latency (ms)").render(&lines),
        )
        .expect("write transfer figure");
    }

    let fig9 = bench::experiments::fig9::measure(samples);
    let series: Vec<SvgSeries> = fig9
        .cells
        .iter()
        .filter(|(_, burst, _)| *burst == 100)
        .map(|(kind, _, s)| SvgSeries::new(format!("{kind} b100"), s.clone()))
        .collect();
    std::fs::write(
        format!("{dir}/fig9_policy.svg"),
        SvgPlot::cdf("Fig 9: 1s functions, burst 100, long IAT").render(&series),
    )
    .expect("write fig9");
}
