//! Shared helpers for the integration tests.

use faas_sim::cloud::CloudSim;
use stellar_core::config::{RuntimeConfig, StaticConfig};
use stellar_core::deployer::{deploy, Deployment};

/// Deploys onto a fresh cloud and returns both.
pub fn deployed(
    provider: faas_sim::config::ProviderConfig,
    static_cfg: &StaticConfig,
    runtime_cfg: &RuntimeConfig,
    seed: u64,
) -> (CloudSim, Deployment) {
    let mut cloud = CloudSim::new(provider, seed);
    let deployment = deploy(&mut cloud, static_cfg, runtime_cfg).expect("deploy");
    (cloud, deployment)
}
