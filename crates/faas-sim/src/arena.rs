//! Hot/cold split storage for per-request state.
//!
//! Every lifecycle event starts by touching a handful of request fields:
//! the cancelled/done flags, the function and instance binding, and the
//! pending timestamps. The rest of the state — the thirteen-component
//! [`Breakdown`], chain bookkeeping, span ids — is consulted only at
//! lifecycle boundaries (assignment, chain hand-off, completion).
//! [`RequestArena`] therefore keeps two parallel slabs indexed by the same
//! slot: a packed [`HotReq`] array the per-event checks stream through,
//! and a [`ColdReq`] side array whose cache lines are pulled in only when
//! a boundary actually needs them.
//!
//! Slots are generational: freeing a slot bumps its generation so a
//! retired [`RequestId`] can never alias the slot's next occupant. The
//! hot entry carries the generation (it is read on every access anyway);
//! liveness is a flag bit, not an `Option`, so the hot array stays
//! densely packed `Copy` data with no drop glue.

use simkit::time::SimTime;

use crate::request::{Breakdown, RequestOrigin};
use crate::types::{FunctionId, InstanceId, RequestId, TransferMode};

/// Lifecycle flag bits of a [`HotReq`].
pub(crate) mod flags {
    /// Slot is occupied by a live request.
    pub const LIVE: u8 = 1 << 0;
    /// Client cancelled the request; handlers retire it on next touch.
    pub const CANCELLED: u8 = 1 << 1;
    /// Completion already recorded (double-completion guard).
    pub const DONE: u8 = 1 << 2;
    /// The request waited on a cold start.
    pub const COLD: u8 = 1 << 3;
    /// Admission control shed the request.
    pub const SHED: u8 = 1 << 4;
    /// Spawned by the DAG engine (direct fan-out child or fired join),
    /// as opposed to a legacy/compiled `ChainSpec` hop. Drives the
    /// per-node conservation counters.
    pub const DAG_SPAWN: u8 = 1 << 5;
}

/// Per-event-hot request state: everything the frequent handler prologues
/// (cancelled checks, instance lookups, wait accounting) read or write.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotReq {
    /// Slot generation stamped into ids handed out for this slot.
    pub generation: u32,
    /// The invoked function.
    pub function: FunctionId,
    /// Lifecycle flag bits (see [`flags`]).
    pub flags: u8,
    /// Instance currently bound to the request.
    pub instance: Option<InstanceId>,
    /// When the request entered the pending queue / triggered its spawn.
    pub wait_started: Option<SimTime>,
    /// When the request started occupying an instance — the base of the
    /// wasted-busy-time accounting for mid-execution cancels.
    pub assigned_at: Option<SimTime>,
    /// When the client issued the request.
    pub issued_at: SimTime,
}

// One hot entry per cache line: the per-event prologue touches exactly one
// line per request. Growing past 64 bytes silently halves that density.
const _: () = assert!(std::mem::size_of::<HotReq>() <= 64);

impl HotReq {
    pub fn live(&self) -> bool {
        self.flags & flags::LIVE != 0
    }

    pub fn cancelled(&self) -> bool {
        self.flags & flags::CANCELLED != 0
    }

    pub fn set_cancelled(&mut self) {
        self.flags |= flags::CANCELLED;
    }

    pub fn done(&self) -> bool {
        self.flags & flags::DONE != 0
    }

    pub fn set_done(&mut self) {
        self.flags |= flags::DONE;
    }

    /// Whether the request waited on a cold start.
    pub fn cold_start(&self) -> bool {
        self.flags & flags::COLD != 0
    }

    pub fn set_cold_start(&mut self) {
        self.flags |= flags::COLD;
    }

    pub fn shed(&self) -> bool {
        self.flags & flags::SHED != 0
    }

    pub fn set_shed(&mut self) {
        self.flags |= flags::SHED;
    }

    /// Whether the DAG engine spawned this request (see
    /// [`flags::DAG_SPAWN`]).
    pub fn dag_spawn(&self) -> bool {
        self.flags & flags::DAG_SPAWN != 0
    }

    pub fn set_dag_spawn(&mut self) {
        self.flags |= flags::DAG_SPAWN;
    }
}

/// Cross-function data transfer info attached to a consumer request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct XferInfo {
    pub mode: TransferMode,
    pub payload_bytes: u64,
    pub send_start: SimTime,
    pub parent: RequestId,
    pub parent_tag: u64,
}

/// Lifecycle-boundary request state: touched at creation, assignment,
/// chain hand-offs and completion, never by the per-event prologues.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColdReq {
    pub origin: RequestOrigin,
    /// User-assigned tag (round number, burst position, …).
    pub tag: u64,
    pub breakdown: Breakdown,
    /// Warm-path overhead draw, apportioned across components by share.
    pub warm_overhead_ms: f64,
    /// Incoming transfer to account at execution start (consumer side).
    pub xfer_in: Option<XferInfo>,
    /// Outgoing chain call start (producer side), set at `ComputeDone`.
    pub chain_started: Option<SimTime>,
    /// In-flight chain hop spawned by this producer, cleared when the
    /// hop returns. Lets a cancel cascade into the hop synchronously.
    pub chain_child: Option<RequestId>,
    /// Root span id (allocated at creation when tracing is on).
    pub root_span: Option<u64>,
    /// Chain span id, pre-allocated at `ComputeDone` so it precedes the
    /// child's root span in allocation order.
    pub chain_span: Option<u64>,
    /// Provider-style error injected into this request (fault plan),
    /// carried into its [`crate::request::Completion`].
    pub error: Option<u16>,
    /// Unresolved DAG obligations (fan-out children and join arrivals)
    /// this request spawned at `ComputeDone`; the instance is released
    /// once the count drains to zero. Always zero for chain producers.
    pub dag_pending: u32,
    /// The external root of the workflow this request belongs to; `None`
    /// for external requests themselves (a root's workflow key is its own
    /// id) and for requests outside any workflow. Keys the join barriers.
    pub wf_root: Option<RequestId>,
}

impl ColdReq {
    /// A fresh cold entry for a just-created request.
    pub fn new(
        origin: RequestOrigin,
        tag: u64,
        xfer_in: Option<XferInfo>,
        root_span: Option<u64>,
    ) -> ColdReq {
        ColdReq {
            origin,
            tag,
            breakdown: Breakdown::default(),
            warm_overhead_ms: 0.0,
            xfer_in,
            chain_started: None,
            chain_child: None,
            root_span,
            chain_span: None,
            error: None,
            dag_pending: 0,
            wf_root: None,
        }
    }
}

/// Occupancy counters of the request slab (see
/// [`crate::cloud::CloudSim::request_slab_stats`]).
///
/// `live` and `high_water` track simultaneously-occupied slots, so a
/// streaming run over millions of invocations should report a
/// `high_water` bounded by the submission slice, not the total request
/// count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestSlabStats {
    /// Slots allocated fresh (slab growth).
    pub slots_allocated: u64,
    /// Request creations served by recycling a freed slot.
    pub slots_reused: u64,
    /// Currently occupied slots.
    pub live: u64,
    /// Peak simultaneously occupied slots.
    pub high_water: u64,
}

/// Generational hot/cold request slab (see module docs).
#[derive(Debug, Default)]
pub(crate) struct RequestArena {
    /// Per-event-hot entries; `hot[i]` pairs with `cold[i]`.
    hot: Vec<HotReq>,
    /// Lifecycle-boundary entries, parallel to `hot`.
    cold: Vec<ColdReq>,
    /// Freed slot indices awaiting reuse (LIFO keeps hot slots hot).
    free: Vec<u32>,
    stats: RequestSlabStats,
}

impl RequestArena {
    /// Creates a request, recycling a freed slot when one is available.
    pub fn create(&mut self, function: FunctionId, issued_at: SimTime, cold: ColdReq) -> RequestId {
        let id = match self.free.pop() {
            Some(slot) => {
                self.stats.slots_reused += 1;
                let hot = &mut self.hot[slot as usize];
                debug_assert!(!hot.live(), "free list pointed at a live slot");
                let generation = hot.generation;
                *hot = HotReq {
                    generation,
                    function,
                    flags: flags::LIVE,
                    instance: None,
                    wait_started: None,
                    assigned_at: None,
                    issued_at,
                };
                self.cold[slot as usize] = cold;
                RequestId::new(slot, generation)
            }
            None => {
                let slot = self.hot.len() as u32;
                self.stats.slots_allocated += 1;
                self.hot.push(HotReq {
                    generation: 0,
                    function,
                    flags: flags::LIVE,
                    instance: None,
                    wait_started: None,
                    assigned_at: None,
                    issued_at,
                });
                self.cold.push(cold);
                RequestId::new(slot, 0)
            }
        };
        self.stats.live += 1;
        self.stats.high_water = self.stats.high_water.max(self.stats.live);
        id
    }

    pub fn hot(&self, rid: RequestId) -> &HotReq {
        let hot = &self.hot[rid.index()];
        debug_assert_eq!(hot.generation, rid.generation(), "stale request id {rid}");
        assert!(hot.live(), "request slot is empty");
        hot
    }

    pub fn hot_mut(&mut self, rid: RequestId) -> &mut HotReq {
        let hot = &mut self.hot[rid.index()];
        debug_assert_eq!(hot.generation, rid.generation(), "stale request id {rid}");
        assert!(hot.live(), "request slot is empty");
        hot
    }

    pub fn cold(&self, rid: RequestId) -> &ColdReq {
        let hot = &self.hot[rid.index()];
        debug_assert_eq!(hot.generation, rid.generation(), "stale request id {rid}");
        assert!(hot.live(), "request slot is empty");
        &self.cold[rid.index()]
    }

    pub fn cold_mut(&mut self, rid: RequestId) -> &mut ColdReq {
        let hot = &self.hot[rid.index()];
        debug_assert_eq!(hot.generation, rid.generation(), "stale request id {rid}");
        assert!(hot.live(), "request slot is empty");
        &mut self.cold[rid.index()]
    }

    /// Whether `rid` still refers to a live request (its slot occupied
    /// and its generation current). A cancel racing a completion makes
    /// stale ids an expected input, not a bug.
    pub fn is_live(&self, rid: RequestId) -> bool {
        self.hot
            .get(rid.index())
            .is_some_and(|hot| hot.generation == rid.generation() && hot.live())
    }

    /// Retires a finished request: copies out both halves of its state,
    /// bumps the slot generation (so the retired id can never alias the
    /// next occupant) and returns the slot to the free list.
    pub fn free(&mut self, rid: RequestId) -> (HotReq, ColdReq) {
        let hot = &mut self.hot[rid.index()];
        debug_assert_eq!(hot.generation, rid.generation(), "freeing stale request id {rid}");
        assert!(hot.live(), "freeing an empty request slot");
        let taken = *hot;
        hot.flags = 0;
        hot.generation = hot.generation.wrapping_add(1);
        self.free.push(rid.index() as u32);
        self.stats.live -= 1;
        (taken, self.cold[rid.index()])
    }

    /// Pre-sizes both slabs for `additional` more live requests.
    pub fn reserve(&mut self, additional: usize) {
        self.hot.reserve(additional);
        self.cold.reserve(additional);
    }

    /// Occupancy counters.
    pub fn stats(&self) -> RequestSlabStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;
    use crate::types::FunctionId;

    fn fid() -> FunctionId {
        FunctionId::from_raw_for_tests(0)
    }

    fn admit(arena: &mut RequestArena, tag: u64) -> RequestId {
        let cold = ColdReq::new(RequestOrigin::External, tag, None, None);
        arena.create(fid(), SimTime::from_nanos(tag), cold)
    }

    #[test]
    fn create_free_recycles_slots_with_bumped_generation() {
        let mut arena = RequestArena::default();
        let a = admit(&mut arena, 1);
        assert_eq!(a.generation(), 0);
        assert!(arena.is_live(a));
        let (hot, cold) = arena.free(a);
        assert!(hot.live(), "returned copy reflects pre-free state");
        assert_eq!(cold.tag, 1);
        assert!(!arena.is_live(a), "freed id is stale");

        let b = admit(&mut arena, 2);
        assert_eq!(b.index(), a.index(), "slot recycled");
        assert_eq!(b.generation(), 1, "generation bumped");
        assert!(arena.is_live(b));
        assert!(!arena.is_live(a), "old id never aliases the new occupant");
        let stats = arena.stats();
        assert_eq!(stats.slots_allocated, 1);
        assert_eq!(stats.slots_reused, 1);
        assert_eq!(stats.live, 1);
        assert_eq!(stats.high_water, 1);
    }

    // Debug builds trip the generation debug_assert ("stale request id"),
    // release builds the liveness assert ("request slot is empty") — either
    // way a freed id must not hand out state.
    #[test]
    #[should_panic]
    fn hot_access_to_freed_slot_panics() {
        let mut arena = RequestArena::default();
        let a = admit(&mut arena, 0);
        arena.free(a);
        let _ = arena.hot(a);
    }

    /// Interpreted op stream for the lockstep property: admit new
    /// requests, mutate live ones through both halves, and free them in
    /// arbitrary order.
    #[derive(Debug, Clone)]
    enum Op {
        Admit,
        /// Cancel the k-th live request (mod live count).
        Cancel(usize),
        /// Complete (free) the k-th live request.
        Complete(usize),
        /// Inject a fault error into the k-th live request.
        Fault(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Admit twice: biasing toward growth keeps the live set populated
        // so cancels/completes/faults mostly hit occupied slots.
        prop_oneof![
            Just(Op::Admit),
            Just(Op::Admit),
            (0usize..64).prop_map(Op::Cancel),
            (0usize..64).prop_map(Op::Complete),
            (0usize..64).prop_map(Op::Fault),
        ]
    }

    proptest! {
        /// Random admit/cancel/complete/fault interleavings keep the hot
        /// arena and cold side-array in lockstep: same length, liveness
        /// agrees with a model set, generations bump on free, retired ids
        /// stay stale, and the stats counters obey conservation laws.
        #[test]
        fn hot_and_cold_stay_in_lockstep(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut arena = RequestArena::default();
            let mut live: Vec<RequestId> = Vec::new();
            let mut retired: Vec<RequestId> = Vec::new();
            let mut created = 0u64;
            let mut tag = 0u64;

            for op in ops {
                match op {
                    Op::Admit => {
                        let rid = admit(&mut arena, tag);
                        prop_assert_eq!(arena.cold(rid).tag, tag);
                        prop_assert!(arena.hot(rid).live());
                        prop_assert!(!arena.hot(rid).cancelled());
                        live.push(rid);
                        created += 1;
                        tag += 1;
                    }
                    Op::Cancel(k) if !live.is_empty() => {
                        let rid = live[k % live.len()];
                        arena.hot_mut(rid).set_cancelled();
                        prop_assert!(arena.hot(rid).cancelled());
                        prop_assert!(arena.is_live(rid), "cancel does not free");
                    }
                    Op::Fault(k) if !live.is_empty() => {
                        let rid = live[k % live.len()];
                        arena.cold_mut(rid).error = Some(503);
                        prop_assert_eq!(arena.cold(rid).error, Some(503));
                    }
                    Op::Complete(k) if !live.is_empty() => {
                        let rid = live.swap_remove(k % live.len());
                        let expected_tag = arena.cold(rid).tag;
                        let gen_before = arena.hot(rid).generation;
                        let (hot, cold) = arena.free(rid);
                        prop_assert_eq!(hot.generation, rid.generation());
                        prop_assert_eq!(cold.tag, expected_tag, "cold half desynced from slot");
                        prop_assert!(!arena.is_live(rid));
                        prop_assert_eq!(
                            arena.hot[rid.index()].generation,
                            gen_before.wrapping_add(1),
                            "generation must bump on free"
                        );
                        retired.push(rid);
                    }
                    _ => {} // mutation of an empty arena: no-op
                }

                // Lockstep and conservation invariants after every op.
                prop_assert_eq!(arena.hot.len(), arena.cold.len());
                let stats = arena.stats();
                prop_assert_eq!(stats.live, live.len() as u64);
                prop_assert_eq!(stats.slots_allocated, arena.hot.len() as u64);
                prop_assert_eq!(stats.slots_allocated + stats.slots_reused, created);
                prop_assert!(stats.high_water >= stats.live);
                prop_assert_eq!(arena.free.len() as u64, stats.slots_allocated - stats.live);
                let occupied = arena.hot.iter().filter(|h| h.live()).count() as u64;
                prop_assert_eq!(occupied, stats.live, "flag liveness disagrees with counter");
                for rid in &live {
                    prop_assert!(arena.is_live(*rid));
                }
                for rid in &retired {
                    prop_assert!(!arena.is_live(*rid), "retired id resurrected");
                }
                // Free-list validity: every entry points at a dead slot,
                // no duplicates.
                let mut seen = std::collections::HashSet::new();
                for &slot in &arena.free {
                    prop_assert!(!arena.hot[slot as usize].live(), "free list points at live slot");
                    prop_assert!(seen.insert(slot), "duplicate free-list entry");
                }
            }
        }
    }
}
