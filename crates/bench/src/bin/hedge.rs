//! Regenerates the hedging-frontier artifact (tail latency vs wasted
//! work per provider); `--samples N` overrides the default 3000-sample
//! methodology (§V).

fn main() {
    let samples = bench::report::PAPER_SAMPLES;
    let samples = std::env::args()
        .skip_while(|a| a != "--samples")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(samples);
    let report = bench::experiments::hedge::measure(samples).report();
    println!("{}", report.render());
}
