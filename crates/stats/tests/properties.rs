//! Property-based tests of the statistics crate.
#![allow(deprecated)] // LogHistogram shim properties are still covered

use proptest::prelude::*;
use stats::bootstrap::bootstrap_ci;
use stats::cdf::Cdf;
use stats::histogram::LogHistogram;
use stats::ks::{ks_critical, ks_statistic};
use stats::metrics::FactorRatios;
use stats::percentile::{median, percentile, sorted_percentile};
use stats::summary::Summary;

fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 1..300)
}

proptest! {
    /// Percentiles are monotone in q and bounded by min/max.
    #[test]
    fn percentile_monotone_and_bounded(xs in samples_strategy(), qs in prop::collection::vec(0.0f64..=1.0, 2..10)) {
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = percentile(&xs, q);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert_eq!(percentile(&xs, 0.0), lo);
        prop_assert_eq!(percentile(&xs, 1.0), hi);
    }

    /// percentile() equals sorted_percentile() on pre-sorted data.
    #[test]
    fn percentile_agrees_with_sorted(xs in samples_strategy(), q in 0.0f64..=1.0) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(percentile(&xs, q), sorted_percentile(&sorted, q));
    }

    /// Summary quantiles are ordered and the mean sits within [min, max].
    #[test]
    fn summary_ordering(xs in samples_strategy()) {
        let s = Summary::from_samples(&xs);
        prop_assert!(s.min <= s.p25);
        prop_assert!(s.p25 <= s.median);
        prop_assert!(s.median <= s.p75);
        prop_assert!(s.p75 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.tail);
        prop_assert!(s.tail <= s.p999 && s.p999 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.count, xs.len());
    }

    /// A CDF evaluates to [0,1], is monotone, and inverts its quantiles.
    #[test]
    fn cdf_properties(xs in samples_strategy(), q in 0.01f64..=0.99) {
        let cdf = Cdf::from_samples(&xs);
        let v = cdf.quantile(q);
        let f = cdf.eval(v);
        // At least a q-fraction of mass lies at or below the q-quantile.
        prop_assert!(f >= q - 1.0 / xs.len() as f64 - 1e-9, "q={q} f={f}");
        prop_assert!(cdf.eval(f64::NEG_INFINITY) == 0.0);
        prop_assert!((cdf.eval(f64::INFINITY) - 1.0).abs() < 1e-12);
        // Monotone in x.
        let lo = cdf.eval(v - 1.0);
        prop_assert!(lo <= f + 1e-12);
    }

    /// KS distance is within [0, 1], symmetric, and zero against itself.
    #[test]
    fn ks_bounds(a in samples_strategy(), b in samples_strategy()) {
        let d = ks_statistic(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d, ks_statistic(&b, &a));
        prop_assert_eq!(ks_statistic(&a, &a), 0.0);
        prop_assert!(ks_critical(a.len(), b.len(), 0.05) > 0.0);
    }

    /// Histogram counts are conserved.
    #[test]
    fn histogram_conserves_mass(xs in prop::collection::vec(0.001f64..1e7, 1..200), bins in 1usize..30) {
        let mut h = LogHistogram::new(1.0, 1e6, bins);
        h.record_all(xs.iter().copied());
        prop_assert_eq!(h.total(), xs.len() as u64);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }

    /// A recorded value lands in the bin whose edges contain it: the
    /// ln-ratio index mapping in `record` and the powf mapping in
    /// `bin_edges` can disagree by a ULP at bin boundaries, which `record`
    /// must reconcile.
    #[test]
    fn histogram_bin_contains_recorded_value(
        v in 0.001f64..1e7,
        lo in 0.01f64..10.0,
        decades in 1u32..6,
        bins in 1usize..40,
    ) {
        let hi = lo * 10f64.powi(decades as i32);
        let mut h = LogHistogram::new(lo, hi, bins);
        h.record(v);
        if v < lo {
            prop_assert_eq!(h.underflow(), 1);
        } else if v >= hi {
            prop_assert_eq!(h.overflow(), 1);
        } else {
            let i = h.counts().iter().position(|&c| c == 1).expect("one bin incremented");
            let (e_lo, e_hi) = h.bin_edges(i);
            prop_assert!(e_lo <= v && v < e_hi, "v={v} outside bin {i} edges [{e_lo}, {e_hi})");
        }
    }

    /// Factor ratios: MR/TR scale linearly when the factor scales.
    #[test]
    fn factor_ratios_scale(base in prop::collection::vec(1.0f64..100.0, 10..50), k in 1.0f64..20.0) {
        let factor: Vec<f64> = base.iter().map(|x| x * k).collect();
        let r = FactorRatios::compute(&factor, &base);
        let m = median(&base);
        prop_assert!((r.mr - k * median(&base) / m).abs() < 1e-9);
        prop_assert!(r.tr >= r.mr - 1e-9, "p99 >= median implies TR >= MR");
    }

    /// Bootstrap CIs bracket their point estimate.
    #[test]
    fn bootstrap_brackets_estimate(xs in prop::collection::vec(0.0f64..1000.0, 5..80), seed in any::<u64>()) {
        let ci = bootstrap_ci(&xs, median, 60, 0.1, seed);
        prop_assert!(ci.lo <= ci.estimate + 1e-9);
        prop_assert!(ci.estimate <= ci.hi + 1e-9);
        prop_assert!(ci.contains(ci.estimate));
    }
}
