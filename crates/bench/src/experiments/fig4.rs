//! Fig 4: cold-start latency as a function of the extra random-content
//! file added to the function image (§VI-B2).

use faas_sim::types::{DeploymentMethod, Runtime};
use providers::paper::{self, ProviderKind};
use providers::profiles::config_for;
use stats::summary::Summary;
use stellar_core::protocols::{cold_invocations, ColdSetup};

use crate::report::{comparison_table, Comparison, Report, BASE_SEED};

/// The extra-file sizes the paper sweeps.
pub const SIZES_MB: [f64; 2] = [10.0, 100.0];

/// Measured data behind Fig 4: `(provider, extra_mb, samples)`.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One cell per (provider, size).
    pub cells: Vec<(ProviderKind, f64, Vec<f64>)>,
}

/// Runs the sweep (providers in parallel, Go + ZIP as in the paper).
pub fn measure(samples: u32) -> Fig4 {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ProviderKind::ALL
            .iter()
            .flat_map(|&kind| SIZES_MB.iter().map(move |&mb| (kind, mb)))
            .map(|(kind, mb)| {
                scope.spawn(move |_| {
                    let setup = ColdSetup {
                        runtime: Runtime::Go,
                        deployment: DeploymentMethod::Zip,
                        extra_image_mb: mb,
                    };
                    let out = cold_invocations(
                        config_for(kind),
                        setup,
                        samples,
                        100,
                        BASE_SEED + 3 + mb as u64,
                    )
                    .expect("image-size run");
                    (kind, mb, out.latencies_ms())
                })
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    Fig4 { cells }
}

impl Fig4 {
    /// Summary of one cell.
    pub fn summary(&self, kind: ProviderKind, mb: f64) -> Option<Summary> {
        self.cells
            .iter()
            .find(|(k, m, _)| *k == kind && *m == mb)
            .map(|(_, _, samples)| Summary::from_samples(samples))
    }

    /// Median sensitivity: `median(100MB) / median(10MB)` per provider.
    pub fn sensitivity(&self, kind: ProviderKind) -> Option<f64> {
        let m10 = self.summary(kind, 10.0)?.median;
        let m100 = self.summary(kind, 100.0)?.median;
        Some(m100 / m10)
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        let mut rows = Vec::new();
        for (kind, mb, samples) in &self.cells {
            let (m10, m100, t100) = paper::image_size_observed_ms(*kind);
            let (pm, pt) = if *mb == 10.0 { (m10, f64::NAN) } else { (m100, t100) };
            rows.push(Comparison::from_summary(
                format!("{kind} +{mb}MB"),
                &Summary::from_samples(samples),
                pm,
                pt,
            ));
        }
        rows
    }

    /// Renders the report including the sensitivity line the paper calls
    /// out (Google flat; AWS/Azure steep).
    pub fn report(&self) -> Report {
        let mut body = comparison_table(&self.comparisons());
        body.push('\n');
        for kind in ProviderKind::ALL {
            if let Some(s) = self.sensitivity(kind) {
                body.push_str(&format!("{kind}: median(100MB)/median(10MB) = {s:.2}x\n"));
            }
        }
        Report { id: "fig4", title: "Cold-start latency vs. function image size", body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_flat_aws_azure_steep() {
        let data = measure(400);
        assert_eq!(data.cells.len(), 6);
        let google = data.sensitivity(ProviderKind::Google).unwrap();
        let aws = data.sensitivity(ProviderKind::Aws).unwrap();
        let azure = data.sensitivity(ProviderKind::Azure).unwrap();
        assert!(google < 1.2, "google sensitivity {google:.2}");
        assert!(aws > 2.0, "aws sensitivity {aws:.2}");
        assert!(azure > 1.8, "azure sensitivity {azure:.2}");
        assert!(data.report().render().contains("median(100MB)"));
    }
}
