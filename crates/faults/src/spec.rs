//! Serde grammar for fault schedules.
//!
//! Mirrors the `policy::spec` style: a tagged enum with named presets
//! and free composition, validated before it ever reaches the cloud.
//!
//! ```json
//! { "kind": "compose", "parts": [
//!     { "kind": "outage", "start_ms": 30000.0, "duration_ms": 10000.0 },
//!     { "kind": "transient", "code": 429, "p": 0.05 } ] }
//! ```

use serde::{Deserialize, Serialize};

fn default_transient_code() -> u16 {
    429
}

/// Declarative fault description; compile with [`FaultSpec::build`]
/// after [`FaultSpec::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum FaultSpec {
    /// No faults: the compiled plan is inert and the run stays
    /// byte-identical to one without a fault spec at all.
    None,
    /// Each external arrival is rejected at the front end with
    /// probability `p`, answered with the provider-style error `code`
    /// (429 throttle, 500/503 server errors).
    Transient {
        #[serde(default = "default_transient_code")]
        code: u16,
        p: f64,
    },
    /// Each external execution crashes its instance at the end of user
    /// compute with probability `p`: the client sees a 500, the busy time
    /// is wasted, and the instance is dead (its committed backlog is
    /// redistributed).
    Crash { p: f64 },
    /// Keepalive purges ("cold-start storms"): from `start_ms` on, every
    /// idle instance in the fleet is reaped at exponentially-spaced
    /// events with mean gap `mean_gap_ms`, forcing cold starts on the
    /// next wave of requests.
    PurgeStorm {
        mean_gap_ms: f64,
        #[serde(default)]
        start_ms: f64,
    },
    /// Capacity outage: instance boots that would finish inside
    /// `[start_ms, start_ms + duration_ms)` are held until the window
    /// closes (no new capacity comes up during the outage).
    Outage { start_ms: f64, duration_ms: f64 },
    /// Network brownout: client↔datacenter propagation delays sampled
    /// inside the window are multiplied by `factor`.
    LatencyInflation { start_ms: f64, duration_ms: f64, factor: f64 },
    /// Graceful degradation (admission control): an external request that
    /// finds `queue_limit` or more requests already waiting for its
    /// function is shed with an explicit 503 instead of queueing.
    Shed { queue_limit: u32 },
    /// Several faults active at once.
    Compose { parts: Vec<FaultSpec> },
}

impl FaultSpec {
    /// The inert spec (see [`FaultSpec::None`]).
    pub fn none() -> FaultSpec {
        FaultSpec::None
    }

    /// Whether this spec injects nothing (recursively).
    pub fn is_none(&self) -> bool {
        match self {
            FaultSpec::None => true,
            FaultSpec::Compose { parts } => parts.iter().all(FaultSpec::is_none),
            _ => false,
        }
    }

    /// Named presets, usable from the CLI via `--faults <name>`.
    pub fn preset(name: &str) -> Option<FaultSpec> {
        Some(match name {
            "throttle-5pct" => FaultSpec::Transient { code: 429, p: 0.05 },
            "crash-2pct" => FaultSpec::Crash { p: 0.02 },
            "purge-storm" => FaultSpec::PurgeStorm { mean_gap_ms: 10_000.0, start_ms: 0.0 },
            "outage-10s" => FaultSpec::Outage { start_ms: 30_000.0, duration_ms: 10_000.0 },
            "brownout-2x" => FaultSpec::LatencyInflation {
                start_ms: 30_000.0,
                duration_ms: 10_000.0,
                factor: 2.0,
            },
            "shed-64" => FaultSpec::Shed { queue_limit: 64 },
            "outage-throttle" => FaultSpec::Compose {
                parts: vec![
                    FaultSpec::Outage { start_ms: 30_000.0, duration_ms: 10_000.0 },
                    FaultSpec::Transient { code: 429, p: 0.05 },
                ],
            },
            _ => return None,
        })
    }

    /// Every preset name, for `--help` and error messages.
    pub fn preset_names() -> &'static [&'static str] {
        &[
            "throttle-5pct",
            "crash-2pct",
            "purge-storm",
            "outage-10s",
            "brownout-2x",
            "shed-64",
            "outage-throttle",
        ]
    }

    pub fn from_json(json: &str) -> Result<FaultSpec, String> {
        let spec: FaultSpec =
            serde_json::from_str(json).map_err(|e| format!("bad fault spec: {e}"))?;
        spec.validate()?;
        Ok(spec)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fault spec serializes")
    }

    /// Rejects non-physical parameters: probabilities outside `[0, 1]`,
    /// non-HTTP-error codes, non-positive durations, inflation factors
    /// below 1, and empty compositions.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            FaultSpec::None => {}
            FaultSpec::Transient { code, p } => {
                if !(400..=599).contains(code) {
                    return Err(format!("transient code must be in 400..=599, got {code}"));
                }
                if !(p.is_finite() && (0.0..=1.0).contains(p)) {
                    return Err(format!("transient p must be in [0, 1], got {p}"));
                }
            }
            FaultSpec::Crash { p } => {
                if !(p.is_finite() && (0.0..=1.0).contains(p)) {
                    return Err(format!("crash p must be in [0, 1], got {p}"));
                }
            }
            FaultSpec::PurgeStorm { mean_gap_ms, start_ms } => {
                if !(mean_gap_ms.is_finite() && *mean_gap_ms > 0.0) {
                    return Err(format!("storm mean gap must be positive, got {mean_gap_ms}"));
                }
                if !(start_ms.is_finite() && *start_ms >= 0.0) {
                    return Err(format!("storm start must be >= 0, got {start_ms}"));
                }
            }
            FaultSpec::Outage { start_ms, duration_ms } => {
                if !(start_ms.is_finite() && *start_ms >= 0.0) {
                    return Err(format!("outage start must be >= 0, got {start_ms}"));
                }
                if !(duration_ms.is_finite() && *duration_ms > 0.0) {
                    return Err(format!("outage duration must be positive, got {duration_ms}"));
                }
            }
            FaultSpec::LatencyInflation { start_ms, duration_ms, factor } => {
                if !(start_ms.is_finite() && *start_ms >= 0.0) {
                    return Err(format!("inflation start must be >= 0, got {start_ms}"));
                }
                if !(duration_ms.is_finite() && *duration_ms > 0.0) {
                    return Err(format!("inflation duration must be positive, got {duration_ms}"));
                }
                if !(factor.is_finite() && *factor >= 1.0) {
                    return Err(format!("inflation factor must be >= 1, got {factor}"));
                }
            }
            FaultSpec::Shed { queue_limit } => {
                if *queue_limit == 0 {
                    return Err("shed queue_limit must be positive".into());
                }
            }
            FaultSpec::Compose { parts } => {
                if parts.is_empty() {
                    return Err("compose needs at least one part".into());
                }
                for part in parts {
                    part.validate()?;
                }
            }
        }
        Ok(())
    }

    /// Compiles the spec into the flat, data-only plan the cloud's event
    /// loop consults. Call after [`FaultSpec::validate`].
    pub fn build(&self) -> FaultPlan {
        let mut plan = FaultPlan::default();
        self.collect(&mut plan);
        plan
    }

    fn collect(&self, plan: &mut FaultPlan) {
        match self {
            FaultSpec::None => {}
            FaultSpec::Transient { code, p } => {
                if *p > 0.0 {
                    plan.transients.push(TransientFault { code: *code, p: *p });
                }
            }
            FaultSpec::Crash { p } => {
                // Composed crash probabilities combine as independent
                // coins collapsed into one draw: 1 - Π(1 - p_i).
                plan.crash_p = 1.0 - (1.0 - plan.crash_p) * (1.0 - p);
            }
            FaultSpec::PurgeStorm { mean_gap_ms, start_ms } => {
                // Later storm stanzas override earlier ones: one storm
                // process per run keeps the event stream deterministic.
                plan.storm = Some(StormPlan { start_ms: *start_ms, mean_gap_ms: *mean_gap_ms });
            }
            FaultSpec::Outage { start_ms, duration_ms } => {
                plan.outages.push(Window { start_ms: *start_ms, end_ms: start_ms + duration_ms });
            }
            FaultSpec::LatencyInflation { start_ms, duration_ms, factor } => {
                plan.inflations.push(Inflation {
                    window: Window { start_ms: *start_ms, end_ms: start_ms + duration_ms },
                    factor: *factor,
                });
            }
            FaultSpec::Shed { queue_limit } => {
                plan.shed_limit = Some(match plan.shed_limit {
                    Some(existing) => existing.min(*queue_limit),
                    None => *queue_limit,
                });
            }
            FaultSpec::Compose { parts } => {
                for part in parts {
                    part.collect(plan);
                }
            }
        }
    }
}

/// One transient-error source: reject with `code` at probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientFault {
    pub code: u16,
    pub p: f64,
}

/// A half-open time window `[start_ms, end_ms)` on the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    pub start_ms: f64,
    pub end_ms: f64,
}

impl Window {
    /// Whether `t_ms` falls inside the window.
    pub fn contains(&self, t_ms: f64) -> bool {
        t_ms >= self.start_ms && t_ms < self.end_ms
    }
}

/// Recurring keepalive-purge process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormPlan {
    pub start_ms: f64,
    pub mean_gap_ms: f64,
}

/// One latency-inflation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inflation {
    pub window: Window,
    pub factor: f64,
}

/// The compiled, data-only fault schedule. Holds no RNG: the cloud draws
/// from its own `fork("faults")` stream at each injection site, gated on
/// the plan actually containing that fault class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Transient-error sources rolled per external arrival, in spec order.
    pub transients: Vec<TransientFault>,
    /// Per-execution crash probability (0 = never).
    pub crash_p: f64,
    /// Keepalive-purge storm process, if any.
    pub storm: Option<StormPlan>,
    /// Capacity-outage windows.
    pub outages: Vec<Window>,
    /// Network latency-inflation windows.
    pub inflations: Vec<Inflation>,
    /// Queue-depth admission-control limit, if any.
    pub shed_limit: Option<u32>,
}

impl FaultPlan {
    /// Whether the plan injects nothing at all (a [`FaultSpec::none`]
    /// compile). Inert plans must not be installed: the cloud treats
    /// "no plan" as the byte-identity baseline.
    pub fn is_inert(&self) -> bool {
        self.transients.is_empty()
            && self.crash_p == 0.0
            && self.storm.is_none()
            && self.outages.is_empty()
            && self.inflations.is_empty()
            && self.shed_limit.is_none()
    }

    /// If a boot finishing at `ready_ms` lands in an outage window,
    /// returns the instant it is released (chaining across overlapping or
    /// back-to-back windows); `None` when unaffected.
    pub fn outage_release_ms(&self, ready_ms: f64) -> Option<f64> {
        let mut t = ready_ms;
        let mut deferred = false;
        loop {
            match self.outages.iter().find(|w| w.contains(t)) {
                Some(w) => {
                    t = w.end_ms;
                    deferred = true;
                }
                None => return deferred.then_some(t),
            }
        }
    }

    /// Product of the factors of every inflation window containing
    /// `now_ms` (1.0 outside all windows).
    pub fn inflation_factor(&self, now_ms: f64) -> f64 {
        self.inflations.iter().filter(|i| i.window.contains(now_ms)).map(|i| i.factor).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_all_validate_and_roundtrip() {
        for name in FaultSpec::preset_names() {
            let spec = FaultSpec::preset(name).unwrap();
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!spec.is_none(), "{name} must inject something");
            assert!(!spec.build().is_inert(), "{name} must compile to a live plan");
            let back = FaultSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, back, "{name} must roundtrip");
        }
        assert!(FaultSpec::preset("no-such-fault").is_none());
    }

    #[test]
    fn none_is_inert() {
        assert!(FaultSpec::none().is_none());
        assert!(FaultSpec::none().build().is_inert());
        assert!(FaultSpec::Compose { parts: vec![FaultSpec::None, FaultSpec::None] }.is_none());
    }

    #[test]
    fn json_grammar_parses_composition() {
        let json = r#"{ "kind": "compose", "parts": [
            { "kind": "outage", "start_ms": 30000.0, "duration_ms": 10000.0 },
            { "kind": "transient", "code": 429, "p": 0.05 } ] }"#;
        let spec = FaultSpec::from_json(json).unwrap();
        assert_eq!(spec, FaultSpec::preset("outage-throttle").unwrap());
        let plan = spec.build();
        assert_eq!(plan.transients, vec![TransientFault { code: 429, p: 0.05 }]);
        assert_eq!(plan.outages, vec![Window { start_ms: 30_000.0, end_ms: 40_000.0 }]);
    }

    #[test]
    fn transient_code_defaults_to_429() {
        let spec = FaultSpec::from_json(r#"{ "kind": "transient", "p": 0.1 }"#).unwrap();
        assert_eq!(spec, FaultSpec::Transient { code: 429, p: 0.1 });
    }

    #[test]
    fn validation_rejects_nonsense() {
        for bad in [
            FaultSpec::Transient { code: 200, p: 0.5 },
            FaultSpec::Transient { code: 429, p: 1.5 },
            FaultSpec::Transient { code: 429, p: f64::NAN },
            FaultSpec::Crash { p: -0.1 },
            FaultSpec::PurgeStorm { mean_gap_ms: 0.0, start_ms: 0.0 },
            FaultSpec::PurgeStorm { mean_gap_ms: 100.0, start_ms: -1.0 },
            FaultSpec::Outage { start_ms: 0.0, duration_ms: 0.0 },
            FaultSpec::Outage { start_ms: f64::INFINITY, duration_ms: 10.0 },
            FaultSpec::LatencyInflation { start_ms: 0.0, duration_ms: 10.0, factor: 0.5 },
            FaultSpec::Shed { queue_limit: 0 },
            FaultSpec::Compose { parts: vec![] },
            FaultSpec::Compose { parts: vec![FaultSpec::Crash { p: 2.0 }] },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn edge_probabilities_are_legal() {
        assert!(FaultSpec::Transient { code: 503, p: 0.0 }.validate().is_ok());
        assert!(FaultSpec::Transient { code: 503, p: 1.0 }.validate().is_ok());
        assert!(FaultSpec::Crash { p: 1.0 }.validate().is_ok());
    }

    #[test]
    fn composed_crashes_collapse_into_one_probability() {
        let spec = FaultSpec::Compose {
            parts: vec![FaultSpec::Crash { p: 0.5 }, FaultSpec::Crash { p: 0.5 }],
        };
        let plan = spec.build();
        assert!((plan.crash_p - 0.75).abs() < 1e-12, "1 - 0.5*0.5, got {}", plan.crash_p);
    }

    #[test]
    fn composed_shed_limits_take_the_minimum() {
        let spec = FaultSpec::Compose {
            parts: vec![FaultSpec::Shed { queue_limit: 64 }, FaultSpec::Shed { queue_limit: 16 }],
        };
        assert_eq!(spec.build().shed_limit, Some(16));
    }

    #[test]
    fn outage_release_chains_adjacent_windows() {
        let plan = FaultSpec::Compose {
            parts: vec![
                FaultSpec::Outage { start_ms: 100.0, duration_ms: 50.0 },
                FaultSpec::Outage { start_ms: 150.0, duration_ms: 25.0 },
            ],
        }
        .build();
        assert_eq!(plan.outage_release_ms(120.0), Some(175.0), "chains through both windows");
        assert_eq!(plan.outage_release_ms(99.0), None);
        assert_eq!(plan.outage_release_ms(175.0), None, "window end is open");
    }

    #[test]
    fn inflation_factors_multiply_when_windows_overlap() {
        let plan = FaultSpec::Compose {
            parts: vec![
                FaultSpec::LatencyInflation { start_ms: 0.0, duration_ms: 100.0, factor: 2.0 },
                FaultSpec::LatencyInflation { start_ms: 50.0, duration_ms: 100.0, factor: 3.0 },
            ],
        }
        .build();
        assert_eq!(plan.inflation_factor(25.0), 2.0);
        assert_eq!(plan.inflation_factor(75.0), 6.0);
        assert_eq!(plan.inflation_factor(125.0), 3.0);
        assert_eq!(plan.inflation_factor(500.0), 1.0);
    }
}
