//! Report plumbing shared by all experiment modules.

use stats::summary::Summary;
use stats::table::{fmt_latency, fmt_ratio};

/// One reproduced paper artifact (a figure or table), rendered as text.
#[derive(Debug, Clone)]
pub struct Report {
    /// Short id ("fig3", "table1", …).
    pub id: &'static str,
    /// Human title as in the paper.
    pub title: &'static str,
    /// Rendered body (tables, CDFs, notes).
    pub body: String,
}

impl Report {
    /// Renders the report with a heading.
    pub fn render(&self) -> String {
        format!("### {} — {}\n\n{}\n", self.id, self.title, self.body)
    }
}

/// A paper-vs-measured row for medians and tails.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Row label.
    pub label: String,
    /// Paper's median, ms (NaN when the paper reports none).
    pub paper_median: f64,
    /// Measured median, ms.
    pub measured_median: f64,
    /// Paper's p99, ms (NaN when the paper reports none).
    pub paper_p99: f64,
    /// Measured p99, ms.
    pub measured_p99: f64,
    /// Measured TMR.
    pub measured_tmr: f64,
}

impl Comparison {
    /// Builds a comparison from a measured summary and paper targets.
    pub fn from_summary(
        label: impl Into<String>,
        summary: &Summary,
        paper_median: f64,
        paper_p99: f64,
    ) -> Comparison {
        Comparison {
            label: label.into(),
            paper_median,
            measured_median: summary.median,
            paper_p99,
            measured_p99: summary.tail,
            measured_tmr: summary.tmr,
        }
    }

    /// Relative median deviation from the paper (None if unreported).
    pub fn median_deviation(&self) -> Option<f64> {
        self.paper_median.is_finite().then(|| self.measured_median / self.paper_median - 1.0)
    }
}

fn fmt_paper(v: f64) -> String {
    if v.is_finite() {
        fmt_latency(v)
    } else {
        "-".to_string()
    }
}

fn fmt_dev(measured: f64, paper: f64) -> String {
    if paper.is_finite() {
        format!("{:+.0}%", (measured / paper - 1.0) * 100.0)
    } else {
        "-".to_string()
    }
}

/// Renders comparisons as a paper-vs-measured table.
pub fn comparison_table(rows: &[Comparison]) -> String {
    let mut table = stats::table::TextTable::new(vec![
        "series",
        "paper_med",
        "med_ms",
        "dev",
        "paper_p99",
        "p99_ms",
        "dev",
        "tmr",
    ]);
    for row in rows {
        table.row(vec![
            row.label.clone(),
            fmt_paper(row.paper_median),
            fmt_latency(row.measured_median),
            fmt_dev(row.measured_median, row.paper_median),
            fmt_paper(row.paper_p99),
            fmt_latency(row.measured_p99),
            fmt_dev(row.measured_p99, row.paper_p99),
            fmt_ratio(row.measured_tmr),
        ]);
    }
    table.render()
}

/// Standard number of latency samples per configuration (the paper's §V).
pub const PAPER_SAMPLES: u32 = 3000;

/// Base seed for the reproduction runs; experiments offset from it so that
/// every configuration gets an independent, stable stream.
pub const BASE_SEED: u64 = 20210711; // IISWC'21 presentation date

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_table_renders_rows_and_deviations() {
        let rows = vec![Comparison {
            label: "aws".into(),
            paper_median: 100.0,
            measured_median: 110.0,
            paper_p99: f64::NAN,
            measured_p99: 200.0,
            measured_tmr: 1.8,
        }];
        let text = comparison_table(&rows);
        assert!(text.contains("aws"));
        assert!(text.contains("+10%"));
        assert!(text.contains('-'), "unreported paper values render as dashes");
    }

    #[test]
    fn median_deviation_handles_nan() {
        let c = Comparison {
            label: "x".into(),
            paper_median: f64::NAN,
            measured_median: 1.0,
            paper_p99: f64::NAN,
            measured_p99: 1.0,
            measured_tmr: 1.0,
        };
        assert!(c.median_deviation().is_none());
    }

    #[test]
    fn report_render_has_heading() {
        let r = Report { id: "fig0", title: "Test", body: "body".into() };
        assert!(r.render().starts_with("### fig0 — Test"));
    }
}
