//! Fig 7: storage-based data-transfer latency as a function of payload
//! size (§VI-C2). AWS and Google.

use faas_sim::types::{TransferMode, GB, KB, MB};
use providers::paper::{self, ProviderKind};
use providers::profiles::config_for;
use stats::summary::Summary;
use stellar_core::protocols::transfer_chain;

use crate::experiments::fig6::fmt_bytes;
use crate::report::{comparison_table, Comparison, Report, BASE_SEED};

/// Payload sweep: 1 KB to 1 GB as in Fig 7.
pub const SIZES: [u64; 7] = [KB, 10 * KB, 100 * KB, MB, 10 * MB, 100 * MB, GB];

/// Providers swept. The paper only measures AWS and Google (Azure had no
/// Go runtime, §VI-C fn.6); the azure-like rows are simulator predictions
/// and render with `-` in the paper columns.
pub const PROVIDERS: [ProviderKind; 3] =
    [ProviderKind::Aws, ProviderKind::Google, ProviderKind::Azure];

/// The providers with paper-reported numbers.
pub const PAPER_PROVIDERS: [ProviderKind; 2] = [ProviderKind::Aws, ProviderKind::Google];

/// Measured data: `(provider, payload_bytes, transfer samples ms)`.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// One cell per (provider, size).
    pub cells: Vec<(ProviderKind, u64, Vec<f64>)>,
}

/// Runs the sweep in parallel. Sample counts shrink for the huge payloads
/// (the paper's client would need days of wall-clock for 3000 × 1 GB).
pub fn measure(samples: u32) -> Fig7 {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = PROVIDERS
            .iter()
            .flat_map(|&kind| SIZES.iter().map(move |&bytes| (kind, bytes)))
            .map(|(kind, bytes)| {
                scope.spawn(move |_| {
                    let n = if bytes >= 100 * MB { samples.min(500) } else { samples };
                    let out = transfer_chain(
                        config_for(kind),
                        TransferMode::Storage,
                        bytes,
                        n,
                        BASE_SEED + 30,
                    )
                    .expect("storage transfer run");
                    (kind, bytes, out.result.transfer_ms())
                })
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    Fig7 { cells }
}

impl Fig7 {
    /// Summary for one cell.
    pub fn summary(&self, kind: ProviderKind, bytes: u64) -> Option<Summary> {
        self.cells
            .iter()
            .find(|(k, b, _)| *k == kind && *b == bytes)
            .map(|(_, _, s)| Summary::from_samples(s))
    }

    /// Effective bandwidth, Mb/s (payload / median).
    pub fn effective_bandwidth_mbit(&self, kind: ProviderKind, bytes: u64) -> Option<f64> {
        let median_ms = self.summary(kind, bytes)?.median;
        Some(bytes as f64 * 8.0 / 1e6 / (median_ms / 1000.0))
    }

    /// Paper-vs-measured rows (1 MB is the anchor the paper quotes).
    pub fn comparisons(&self) -> Vec<Comparison> {
        let mut rows = Vec::new();
        for (kind, bytes, samples) in &self.cells {
            let (pm, pt) = if *bytes == MB {
                paper::storage_transfer_1mb_ms(*kind)
            } else {
                (f64::NAN, f64::NAN)
            };
            rows.push(Comparison::from_summary(
                format!("{kind} storage {}", fmt_bytes(*bytes)),
                &Summary::from_samples(samples),
                pm,
                pt,
            ));
        }
        rows
    }

    /// Renders the report including the bandwidth lines (§VI-C2: 72→960
    /// and 48→408 Mb/s).
    pub fn report(&self) -> Report {
        let mut body = comparison_table(&self.comparisons());
        body.push('\n');
        for kind in PROVIDERS {
            let (small_t, large_t) = paper::storage_bandwidth_mbit(kind);
            let small = self.effective_bandwidth_mbit(kind, MB).unwrap_or(f64::NAN);
            let large = self.effective_bandwidth_mbit(kind, GB).unwrap_or(f64::NAN);
            body.push_str(&format!(
                "{kind}: effective storage bandwidth {small:.0} Mb/s @1MB (paper {small_t:.0}), \
                 {large:.0} Mb/s @1GB (paper up to {large_t:.0})\n"
            ));
        }
        Report { id: "fig7", title: "Storage-based data-transfer latency vs. payload size", body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_tails_are_the_headline() {
        let data = measure(400);
        for kind in PROVIDERS {
            let s = data.summary(kind, MB).unwrap();
            assert!(s.tmr > 4.0, "{kind} storage TMR {}", s.tmr);
            // Effective bandwidth grows with payload size.
            let bw_small = data.effective_bandwidth_mbit(kind, MB).unwrap();
            let bw_large = data.effective_bandwidth_mbit(kind, 100 * MB).unwrap();
            assert!(bw_large > 3.0 * bw_small, "{kind}: {bw_small:.0} -> {bw_large:.0}");
        }
        // AWS leads on storage latency at 1 MB (§VI-C2).
        let aws = data.summary(ProviderKind::Aws, MB).unwrap().median;
        let google = data.summary(ProviderKind::Google, MB).unwrap().median;
        assert!(aws < google);
        assert!(data.report().render().contains("effective storage bandwidth"));
    }
}
