//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` crate's [`Value`]-tree data model, without `syn` or
//! `quote`: the input item is parsed directly from its token stream and the
//! impl is emitted as source text. Supported shapes (everything this
//! workspace derives on):
//!
//! * structs with named fields, honouring `#[serde(default)]` and
//!   `#[serde(default = "path")]`
//! * newtype (single-field tuple) structs, incl. `#[serde(transparent)]`
//! * enums of unit / newtype / struct variants, honouring
//!   `#[serde(rename_all = "snake_case")]` and `#[serde(tag = "...")]`
//!
//! Generics are not supported (none of the workspace's serde types are
//! generic); deriving on a generic item produces a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- item model -----------------------------------------------------------

#[derive(Debug, Default)]
struct ContainerAttrs {
    rename_all_snake: bool,
    tag: Option<String>,
    transparent: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    /// `None`: required. `Some(None)`: `#[serde(default)]`.
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

#[derive(Debug)]
enum VariantData {
    Unit,
    Newtype,
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    data: VariantData,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

// ---- parsing --------------------------------------------------------------

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(stream: TokenStream) -> Parser {
        Parser { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consumes leading attributes, folding `#[serde(...)]` ones into
    /// `attrs` via `apply`.
    fn take_attrs(&mut self, mut apply: impl FnMut(&[TokenTree])) {
        while self.at_punct('#') {
            self.next(); // '#'
            let Some(TokenTree::Group(g)) = self.next() else { return };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(head)) = inner.first() {
                if head.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        let args: Vec<TokenTree> = args.stream().into_iter().collect();
                        apply(&args);
                    }
                }
            }
        }
    }

    /// Skips `pub`, `pub(...)`.
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips a type (or any tokens) until a top-level comma, tracking
    /// angle-bracket depth so `HashMap<String, V>` does not split early.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.next();
        }
    }
}

/// `lit` including surrounding quotes → bare string.
fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Applies one `#[serde(...)]` argument list to container attrs.
fn container_attr(attrs: &mut ContainerAttrs, args: &[TokenTree]) {
    let mut i = 0;
    while i < args.len() {
        let word = args[i].to_string();
        match word.as_str() {
            "transparent" => attrs.transparent = true,
            "rename_all" => {
                // rename_all = "snake_case"
                if let Some(TokenTree::Literal(l)) = args.get(i + 2) {
                    if unquote(&l.to_string()) == "snake_case" {
                        attrs.rename_all_snake = true;
                    }
                    i += 2;
                }
            }
            "tag" => {
                if let Some(TokenTree::Literal(l)) = args.get(i + 2) {
                    attrs.tag = Some(unquote(&l.to_string()));
                    i += 2;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Applies one `#[serde(...)]` argument list to a field's default spec.
fn field_attr(default: &mut Option<Option<String>>, args: &[TokenTree]) {
    let mut i = 0;
    while i < args.len() {
        if args[i].to_string() == "default" {
            if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(l))) =
                (args.get(i + 1), args.get(i + 2))
            {
                if eq.as_char() == '=' {
                    *default = Some(Some(unquote(&l.to_string())));
                    i += 2;
                }
            } else {
                *default = Some(None);
            }
        }
        i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut p = Parser::new(stream);
    let mut fields = Vec::new();
    loop {
        let mut default = None;
        p.take_attrs(|args| field_attr(&mut default, args));
        p.skip_vis();
        let Some(TokenTree::Ident(name)) = p.next() else { break };
        // ':'
        p.next();
        p.skip_until_comma();
        p.next(); // ','
        fields.push(Field { name: name.to_string(), default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut p = Parser::new(stream);
    let mut variants = Vec::new();
    loop {
        p.take_attrs(|_| {});
        let Some(TokenTree::Ident(name)) = p.next() else { break };
        let data = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                p.next();
                VariantData::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                p.next();
                VariantData::Newtype
            }
            _ => VariantData::Unit,
        };
        if p.at_punct(',') {
            p.next();
        }
        variants.push(Variant { name: name.to_string(), data });
    }
    variants
}

fn parse_input(stream: TokenStream) -> Result<Input, String> {
    let mut p = Parser::new(stream);
    let mut attrs = ContainerAttrs::default();
    p.take_attrs(|args| container_attr(&mut attrs, args));
    p.skip_vis();
    let Some(TokenTree::Ident(kw)) = p.next() else {
        return Err("expected `struct` or `enum`".into());
    };
    let kw = kw.to_string();
    let Some(TokenTree::Ident(name)) = p.next() else {
        return Err("expected item name".into());
    };
    if p.at_punct('<') {
        return Err("generic types are not supported by the vendored serde_derive".into());
    }
    let data = match (kw.as_str(), p.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            // Count top-level fields: must be a newtype.
            let mut depth = 0i32;
            let mut fields = 1usize;
            for t in g.stream() {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
                    _ => {}
                }
            }
            if fields != 1 {
                return Err("only single-field tuple structs are supported".into());
            }
            Data::NewtypeStruct
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Data::Enum(parse_variants(g.stream()))
        }
        _ => return Err(format!("unsupported item shape for `{name}`")),
    };
    Ok(Input { name: name.to_string(), attrs, data })
}

// ---- codegen --------------------------------------------------------------

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_key(attrs: &ContainerAttrs, variant: &str) -> String {
    if attrs.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NewtypeStruct => "serde::Serialize::serialize(&self.0)".to_string(),
        Data::NamedStruct(fields) => {
            let mut s =
                String::from("{ let mut entries: Vec<(String, serde::Value)> = Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "entries.push((String::from(\"{0}\"), serde::Serialize::serialize(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("serde::Value::Map(entries) }");
            s
        }
        Data::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let key = variant_key(&input.attrs, &v.name);
                match (&v.data, &input.attrs.tag) {
                    (VariantData::Unit, None) => s.push_str(&format!(
                        "{name}::{0} => serde::Value::Str(String::from(\"{key}\")),\n",
                        v.name
                    )),
                    (VariantData::Unit, Some(tag)) => s.push_str(&format!(
                        "{name}::{0} => serde::Value::Map(vec![(String::from(\"{tag}\"), serde::Value::Str(String::from(\"{key}\")))]),\n",
                        v.name
                    )),
                    (VariantData::Newtype, None) => s.push_str(&format!(
                        "{name}::{0}(inner) => serde::Value::Map(vec![(String::from(\"{key}\"), serde::Serialize::serialize(inner))]),\n",
                        v.name
                    )),
                    (VariantData::Newtype, Some(_)) => s.push_str(&format!(
                        "{name}::{0}(_) => panic!(\"internally tagged newtype variants unsupported\"),\n",
                        v.name
                    )),
                    (VariantData::Named(fields), tag) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        s.push_str(&format!(
                            "{name}::{0} {{ {1} }} => {{\n",
                            v.name,
                            binders.join(", ")
                        ));
                        s.push_str(
                            "let mut fields: Vec<(String, serde::Value)> = Vec::new();\n",
                        );
                        if let Some(tag) = tag {
                            s.push_str(&format!(
                                "fields.push((String::from(\"{tag}\"), serde::Value::Str(String::from(\"{key}\"))));\n"
                            ));
                        }
                        for f in fields {
                            s.push_str(&format!(
                                "fields.push((String::from(\"{0}\"), serde::Serialize::serialize({0})));\n",
                                f.name
                            ));
                        }
                        if tag.is_some() {
                            s.push_str("serde::Value::Map(fields)\n}\n");
                        } else {
                            s.push_str(&format!(
                                "serde::Value::Map(vec![(String::from(\"{key}\"), serde::Value::Map(fields))])\n}}\n"
                            ));
                        }
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_field_extract(f: &Field, source: &str) -> String {
    match &f.default {
        None => format!("{0}: serde::field({source}, \"{0}\")?,\n", f.name),
        Some(None) => {
            format!("{0}: serde::field_or({source}, \"{0}\", Default::default)?,\n", f.name)
        }
        Some(Some(path)) => {
            format!("{0}: serde::field_or({source}, \"{0}\", {path})?,\n", f.name)
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NewtypeStruct => {
            format!("Ok({name}(serde::Deserialize::deserialize(v)?))")
        }
        Data::NamedStruct(fields) => {
            let mut s = format!(
                "let entries = v.as_map().ok_or_else(|| serde::DeError::expected(\"map for {name}\", v))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&gen_field_extract(f, "entries"));
            }
            s.push_str("})");
            s
        }
        Data::Enum(variants) => match &input.attrs.tag {
            Some(tag) => {
                let mut s = format!(
                    "let entries = v.as_map().ok_or_else(|| serde::DeError::expected(\"tagged map for {name}\", v))?;\n\
                     let tag = serde::lookup(entries, \"{tag}\")\
                         .and_then(serde::Value::as_str)\
                         .ok_or_else(|| serde::DeError::missing(\"{tag}\"))?;\n\
                     match tag {{\n"
                );
                for v in variants {
                    let key = variant_key(&input.attrs, &v.name);
                    match &v.data {
                        VariantData::Unit => {
                            s.push_str(&format!("\"{key}\" => Ok({name}::{0}),\n", v.name));
                        }
                        VariantData::Newtype => {
                            s.push_str(&format!(
                                "\"{key}\" => Err(serde::DeError(String::from(\"internally tagged newtype variants unsupported\"))),\n"
                            ));
                        }
                        VariantData::Named(fields) => {
                            s.push_str(&format!("\"{key}\" => Ok({name}::{0} {{\n", v.name));
                            for f in fields {
                                s.push_str(&gen_field_extract(f, "entries"));
                            }
                            s.push_str("}),\n");
                        }
                    }
                }
                s.push_str(&format!(
                    "other => Err(serde::DeError::unknown_variant(other, \"{name}\")),\n}}"
                ));
                s
            }
            None => {
                let mut s = String::from("match v {\n");
                // Unit variants arrive as bare strings.
                s.push_str("serde::Value::Str(s) => match s.as_str() {\n");
                for v in variants {
                    if matches!(v.data, VariantData::Unit) {
                        let key = variant_key(&input.attrs, &v.name);
                        s.push_str(&format!("\"{key}\" => Ok({name}::{0}),\n", v.name));
                    }
                }
                s.push_str(&format!(
                    "other => Err(serde::DeError::unknown_variant(other, \"{name}\")),\n}},\n"
                ));
                // Data variants arrive as single-entry maps.
                s.push_str(
                    "serde::Value::Map(entries) if entries.len() == 1 => {\n\
                     let (key, inner) = &entries[0];\n\
                     let _ = inner;\n\
                     match key.as_str() {\n",
                );
                for v in variants {
                    let key = variant_key(&input.attrs, &v.name);
                    match &v.data {
                        VariantData::Unit => {}
                        VariantData::Newtype => s.push_str(&format!(
                            "\"{key}\" => Ok({name}::{0}(serde::Deserialize::deserialize(inner)?)),\n",
                            v.name
                        )),
                        VariantData::Named(fields) => {
                            s.push_str(&format!(
                                "\"{key}\" => {{\n\
                                 let fields = inner.as_map().ok_or_else(|| serde::DeError::expected(\"variant map\", inner))?;\n\
                                 let _ = fields;\n\
                                 Ok({name}::{0} {{\n",
                                v.name
                            ));
                            for f in fields {
                                s.push_str(&gen_field_extract(f, "fields"));
                            }
                            s.push_str("})\n},\n");
                        }
                    }
                }
                s.push_str(&format!(
                    "other => Err(serde::DeError::unknown_variant(other, \"{name}\")),\n}}\n}},\n"
                ));
                s.push_str(&format!(
                    "other => Err(serde::DeError::expected(\"variant of {name}\", other)),\n}}"
                ));
                s
            }
        },
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn deserialize(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen(&item).parse().expect("vendored serde_derive emitted invalid Rust"),
        Err(msg) => format!("compile_error!(\"{msg}\");").parse().unwrap(),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
