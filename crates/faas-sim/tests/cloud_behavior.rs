//! End-to-end behaviour tests of the simulated cloud using the neutral
//! test provider (round numbers, deterministic distributions).

use faas_sim::cloud::{CloudSim, DeployError};
use faas_sim::config::{ProviderConfig, ScalePolicy};
use faas_sim::spec::FunctionSpec;
use faas_sim::testutil::test_provider;
use faas_sim::types::{FunctionId, Runtime, TransferMode, MB};
use simkit::dist::Dist;
use simkit::time::SimTime;

const SEC: fn(f64) -> SimTime = SimTime::from_secs;

fn run_one(cloud: &mut CloudSim, f: FunctionId, at: SimTime) -> faas_sim::Completion {
    cloud.submit(f, 0, at);
    cloud.run_until(at + SEC(20.0));
    let mut done = cloud.drain_completions();
    assert_eq!(done.len(), 1, "expected exactly one completion");
    done.pop().unwrap()
}

#[test]
fn warm_latency_is_propagation_plus_overhead() {
    let mut cloud = CloudSim::new(test_provider(), 1);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    let _cold = run_one(&mut cloud, f, SimTime::ZERO);
    let warm = run_one(&mut cloud, f, SEC(30.0));
    assert!(!warm.cold);
    // 2x10ms propagation + 20ms overhead + 0.5ms dispatch service.
    let expected = 10.0 + 10.0 + 20.0 + 0.5;
    assert!(
        (warm.latency_ms() - expected).abs() < 0.6,
        "warm latency {} vs expected {expected}",
        warm.latency_ms()
    );
}

#[test]
fn cold_latency_includes_boot_stages() {
    let mut cloud = CloudSim::new(test_provider(), 2);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    let cold = run_one(&mut cloud, f, SimTime::ZERO);
    assert!(cold.cold);
    let breakdown = cold.breakdown.cold.expect("cold breakdown present");
    // decision 10 + sandbox 100 + image (40 base + 5MB/100MBps = 50) + 90
    // runtime 30 + handler 10 = 240ms
    assert!((breakdown.total_ms - 240.0).abs() < 1.0, "boot {}", breakdown.total_ms);
    // End-to-end = warm path (40.5) + boot (240)
    assert!((cold.latency_ms() - 280.5).abs() < 1.5, "cold latency {}", cold.latency_ms());
    // Conservation: breakdown sums to end-to-end latency.
    assert!(
        (cold.breakdown.total_ms() - cold.latency_ms()).abs() < 1e-3,
        "breakdown {} vs latency {}",
        cold.breakdown.total_ms(),
        cold.latency_ms()
    );
}

#[test]
fn breakdown_conservation_holds_for_every_request() {
    let mut cloud = CloudSim::new(test_provider(), 3);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(25.0).build()).unwrap();
    for i in 0..50 {
        cloud.submit(f, i, SimTime::from_millis(i as f64 * 200.0));
    }
    cloud.run_until(SEC(120.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 50);
    for c in &done {
        assert!(
            (c.breakdown.total_ms() - c.latency_ms()).abs() < 1e-3,
            "request {} breakdown {} vs latency {}",
            c.id,
            c.breakdown.total_ms(),
            c.latency_ms()
        );
    }
}

#[test]
fn keepalive_reaps_idle_instances() {
    let mut cloud = CloudSim::new(test_provider(), 4);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    let _ = run_one(&mut cloud, f, SimTime::ZERO);
    assert_eq!(cloud.live_instances(f), 1);
    // Keep-alive is 60s in the test provider; idle from ~0.3s.
    cloud.run_until(SEC(120.0));
    assert_eq!(cloud.live_instances(f), 0);
    assert_eq!(cloud.stats().reaps, 1);
    // The next request after the reap is cold again.
    let again = run_one(&mut cloud, f, SEC(150.0));
    assert!(again.cold);
}

#[test]
fn short_iat_keeps_instance_warm() {
    let mut cloud = CloudSim::new(test_provider(), 5);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    // 3s IAT < 60s keep-alive: only the first request is cold.
    for i in 0..20 {
        cloud.submit(f, i, SEC(3.0 * i as f64));
    }
    cloud.run_until(SEC(120.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 20);
    assert_eq!(done.iter().filter(|c| c.cold).count(), 1);
    assert_eq!(cloud.stats().spawns, 1);
}

#[test]
fn per_request_policy_spawns_one_instance_per_burst_request() {
    let mut cloud = CloudSim::new(test_provider(), 6);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(1000.0).build()).unwrap();
    for i in 0..50 {
        cloud.submit(f, i, SimTime::ZERO);
    }
    cloud.run_until(SEC(120.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 50);
    assert_eq!(cloud.stats().spawns, 50, "AWS-style: one instance per request");
    // With 1s execution and ~0.3s boots, nobody should wait ~2s.
    let max = done.iter().map(|c| c.latency_ms()).fold(0.0, f64::max);
    assert!(max < 2000.0, "max latency {max}");
}

#[test]
fn target_concurrency_policy_queues_up_to_target() {
    let mut cfg = test_provider();
    cfg.scaling.policy = ScalePolicy::TargetConcurrency { target: 4.0 };
    let mut cloud = CloudSim::new(cfg, 7);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(1000.0).build()).unwrap();
    for i in 0..100 {
        cloud.submit(f, i, SimTime::ZERO);
    }
    cloud.run_until(SEC(300.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 100);
    // Google-style: ~25 instances for 100 requests at target 4.
    let spawns = cloud.stats().spawns;
    assert!((20..=30).contains(&spawns), "spawned {spawns}");
    // Tail requests waited for up to ~3 executions ahead of them.
    let max = done.iter().map(|c| c.latency_ms()).fold(0.0, f64::max);
    assert!(max > 3000.0, "deep-queued request should exceed 3 execs, max {max}");
    assert!(max < 6000.0, "queue depth bounded by target, max {max}");
}

#[test]
fn periodic_policy_scales_slowly_and_queues_deeply() {
    let mut cfg = test_provider();
    cfg.scaling.policy = ScalePolicy::Periodic { interval_ms: 5000.0, step: 1 };
    let mut cloud = CloudSim::new(cfg, 8);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(1000.0).build()).unwrap();
    for i in 0..30 {
        cloud.submit(f, i, SimTime::ZERO);
    }
    cloud.run_until(SEC(300.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 30);
    // Azure-style: far fewer instances than requests, very deep queueing.
    assert!(cloud.stats().spawns <= 6, "spawns {}", cloud.stats().spawns);
    let max = done.iter().map(|c| c.latency_ms()).fold(0.0, f64::max);
    assert!(max > 10_000.0, "deep queue expected, max {max}");
}

#[test]
fn inline_chain_transfers_payload() {
    let mut cloud = CloudSim::new(test_provider(), 9);
    let consumer = cloud.deploy(FunctionSpec::builder("consumer").build()).unwrap();
    let producer = cloud
        .deploy(
            FunctionSpec::builder("producer").chain(consumer, TransferMode::Inline, 2 * MB).build(),
        )
        .unwrap();
    let done = run_one(&mut cloud, producer, SimTime::ZERO);
    assert!(done.breakdown.chain_ms > 0.0, "chain time recorded");
    let transfers = cloud.drain_transfers();
    assert_eq!(transfers.len(), 1);
    let t = transfers[0];
    assert_eq!(t.mode, TransferMode::Inline);
    assert_eq!(t.payload_bytes, 2 * MB);
    // 2MB at 100MB/s = 20ms wire time, plus the consumer's cold-start
    // (first use) and warm-path segments.
    assert!(t.transfer_ms() > 20.0, "transfer {}", t.transfer_ms());
    // Parent end-to-end covers the chain round trip.
    assert!(done.latency_ms() > t.transfer_ms());
}

#[test]
fn storage_chain_pays_put_and_get() {
    let mut cloud = CloudSim::new(test_provider(), 10);
    let consumer = cloud.deploy(FunctionSpec::builder("consumer").build()).unwrap();
    let producer = cloud
        .deploy(
            FunctionSpec::builder("producer")
                .chain(consumer, TransferMode::Storage, 10 * MB)
                .build(),
        )
        .unwrap();
    // Warm both functions first so the transfer sample is warm-path only.
    let _ = run_one(&mut cloud, producer, SimTime::ZERO);
    cloud.drain_transfers();
    let _ = run_one(&mut cloud, producer, SEC(25.0));
    let transfers = cloud.drain_transfers();
    assert_eq!(transfers.len(), 1);
    let t = transfers[0];
    // put: 15 + 100ms transfer; get: 10 + 100; consumer warm path ~20ms.
    // Transfer window covers put + invocation + get.
    assert!(t.transfer_ms() > 225.0, "transfer {}", t.transfer_ms());
    assert!(t.transfer_ms() < 300.0, "transfer {}", t.transfer_ms());
}

#[test]
fn inline_payload_over_limit_is_rejected() {
    let mut cloud = CloudSim::new(test_provider(), 11);
    let consumer = cloud.deploy(FunctionSpec::builder("consumer").build()).unwrap();
    let err = cloud
        .deploy(
            FunctionSpec::builder("producer")
                .chain(consumer, TransferMode::Inline, 100 * MB)
                .build(),
        )
        .unwrap_err();
    assert!(matches!(err, DeployError::InlinePayloadTooLarge { .. }));
    // Storage transfers have no such limit.
    assert!(cloud
        .deploy(
            FunctionSpec::builder("producer")
                .chain(consumer, TransferMode::Storage, 100 * MB)
                .build(),
        )
        .is_ok());
}

#[test]
fn chain_to_unknown_function_is_rejected() {
    let mut cloud = CloudSim::new(test_provider(), 12);
    let err = cloud
        .deploy(
            FunctionSpec::builder("producer")
                .chain(FunctionId::from_raw_for_tests(7), TransferMode::Inline, 1024)
                .build(),
        )
        .unwrap_err();
    assert!(matches!(err, DeployError::UnknownChainTarget(_)));
}

#[test]
fn lb_miss_forces_dedicated_cold_start() {
    let mut cfg = test_provider();
    cfg.dispatch.miss_prob = 1.0; // every concurrent request misses
    let mut cloud = CloudSim::new(cfg, 13);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    // Misses are a concurrency artefact: sequential requests never miss...
    for i in 0..3 {
        cloud.submit(f, i, SEC(i as f64 * 2.0));
    }
    cloud.run_until(SEC(30.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 3);
    assert_eq!(cloud.stats().lb_misses, 0, "no misses without concurrency");
    assert_eq!(done.iter().filter(|c| c.cold).count(), 1);

    // ...but requests racing an in-flight one all miss and cold start.
    for i in 0..5 {
        cloud.submit(f, 10 + i, SEC(40.0));
    }
    cloud.run_until(SEC(80.0));
    let done = cloud.drain_completions();
    assert_eq!(done.len(), 5);
    // The first of the burst reuses the warm instance; the rest miss.
    assert_eq!(cloud.stats().lb_misses, 4);
    assert_eq!(done.iter().filter(|c| c.cold).count(), 4);
}

#[test]
fn memory_throttling_slows_execution() {
    let mut cloud = CloudSim::new(test_provider(), 14);
    let full = cloud
        .deploy(FunctionSpec::builder("full").memory_mb(1024).exec_constant_ms(100.0).build())
        .unwrap();
    let small = cloud
        .deploy(FunctionSpec::builder("small").memory_mb(256).exec_constant_ms(100.0).build())
        .unwrap();
    let a = run_one(&mut cloud, full, SimTime::ZERO);
    let b = run_one(&mut cloud, small, SEC(200.0));
    assert!((a.breakdown.exec_ms - 100.0).abs() < 1e-9);
    assert!((b.breakdown.exec_ms - 400.0).abs() < 1e-9, "256MB = 1/4 speed");
}

#[test]
fn bigger_image_boots_slower() {
    let mut cloud = CloudSim::new(test_provider(), 15);
    let small = cloud.deploy(FunctionSpec::builder("s").runtime(Runtime::Go).build()).unwrap();
    let big = cloud
        .deploy(FunctionSpec::builder("b").runtime(Runtime::Go).extra_image_mb(100.0).build())
        .unwrap();
    let a = run_one(&mut cloud, small, SimTime::ZERO);
    let b = run_one(&mut cloud, big, SEC(200.0));
    let fa = a.breakdown.cold.unwrap().image_fetch_ms;
    let fb = b.breakdown.cold.unwrap().image_fetch_ms;
    // 2MB vs 102MB at 100MB/s: 20ms vs 1020ms of transfer.
    assert!((fb - fa - 1000.0).abs() < 1.0, "fetch {fa} vs {fb}");
    assert!(b.latency_ms() - a.latency_ms() > 900.0);
}

#[test]
fn deterministic_across_runs() {
    let collect = |seed: u64| {
        let mut cloud = CloudSim::new(test_provider_with_noise(), seed);
        let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
        for i in 0..50 {
            cloud.submit(f, i, SimTime::from_millis(500.0 * i as f64));
        }
        cloud.run_until(SEC(120.0));
        cloud.drain_completions().into_iter().map(|c| c.latency_ms()).collect::<Vec<_>>()
    };
    assert_eq!(collect(1), collect(1));
    assert_ne!(collect(1), collect(2));
}

/// A test provider with real randomness, for determinism checks.
fn test_provider_with_noise() -> ProviderConfig {
    let mut cfg = test_provider();
    cfg.warm_path.overhead_ms = Dist::lognormal_median_p99(20.0, 60.0);
    cfg.network.prop_delay_ms = Dist::Normal { mean: 10.0, std: 0.5 };
    cfg
}

#[test]
fn max_instances_limit_is_respected() {
    let mut cfg = test_provider();
    cfg.limits.max_instances_per_function = 3;
    let mut cloud = CloudSim::new(cfg, 16);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(500.0).build()).unwrap();
    for i in 0..20 {
        cloud.submit(f, i, SimTime::ZERO);
    }
    cloud.run_until(SEC(120.0));
    assert_eq!(cloud.drain_completions().len(), 20, "all served despite the cap");
    assert!(cloud.stats().spawns <= 3, "spawns {}", cloud.stats().spawns);
}

#[test]
fn submit_to_unknown_function_panics() {
    let result = std::panic::catch_unwind(|| {
        let mut cloud = CloudSim::new(test_provider(), 17);
        cloud.submit(FunctionId::from_raw_for_tests(0), 0, SimTime::ZERO);
    });
    assert!(result.is_err());
}

#[test]
fn cost_aware_policy_balances_queueing_and_spawning() {
    // Obs 7 extension: with short functions it queues (few spawns); with
    // long functions it spawns per request (no queueing worth > a cold
    // start).
    let run = |exec_ms: f64| {
        let mut cfg = test_provider();
        cfg.scaling.policy = ScalePolicy::CostAware { cold_estimate_ms: 250.0 };
        let mut cloud = CloudSim::new(cfg, 21);
        let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(exec_ms).build()).unwrap();
        for i in 0..40 {
            cloud.submit(f, i, SimTime::ZERO);
        }
        cloud.run_until(SEC(600.0));
        assert_eq!(cloud.drain_completions().len(), 40);
        cloud.stats().spawns
    };
    assert!(run(0.0) <= 3, "near-zero exec: one instance absorbs the burst");
    assert_eq!(run(1000.0), 40, "long exec: per-request spawning");
    let mid = run(50.0);
    assert!(mid > 3 && mid < 40, "mid exec balances: {mid} spawns");
}

#[test]
fn request_slots_are_recycled() {
    // Sequential requests (each completes before the next is submitted)
    // must all share one slab slot, distinguished by generation.
    let mut cloud = CloudSim::new(test_provider(), 31);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    let mut ids = Vec::new();
    for i in 0..8u64 {
        let done = run_one(&mut cloud, f, SEC(30.0 * i as f64));
        ids.push(done.id);
    }
    let slab = cloud.request_slab_stats();
    assert_eq!(slab.slots_allocated, 1, "sequential load needs one slot");
    assert_eq!(slab.slots_reused, 7, "every later request recycles it");
    assert_eq!(slab.high_water, 1);
    assert_eq!(slab.live, 0, "all requests retired");
    // Generational ids stay distinct even though the slot is shared.
    assert!(ids.iter().all(|id| id.index() == 0));
    let generations: Vec<u32> = ids.iter().map(|id| id.generation()).collect();
    assert_eq!(generations, (0..8).collect::<Vec<u32>>());
    assert_eq!(ids[0].to_string(), "req0");
    assert_eq!(ids[3].to_string(), "req0g3");
}

#[test]
fn slab_high_water_tracks_concurrency_not_total() {
    // A burst of 10 simultaneous requests peaks at 10 live slots; a
    // second burst after the first drains reuses them all.
    let mut cloud = CloudSim::new(test_provider(), 32);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    for burst in 0..3u64 {
        let at = SEC(120.0 * burst as f64);
        for i in 0..10 {
            cloud.submit(f, burst * 10 + i, at);
        }
        cloud.run_until(at + SEC(60.0));
    }
    assert_eq!(cloud.drain_completions().len(), 30);
    let slab = cloud.request_slab_stats();
    assert_eq!(slab.high_water, 10, "peak live = one burst, not the total");
    assert_eq!(slab.slots_allocated, 10);
    assert_eq!(slab.slots_reused, 20);
}

#[test]
fn submission_window_matches_up_front_submission() {
    // Interleaving submission with event processing under an open window
    // must replay the exact results of submitting everything up front.
    let up_front = {
        let mut cloud = CloudSim::new(test_provider(), 33);
        let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(40.0).build()).unwrap();
        for i in 0..50u64 {
            cloud.submit(f, i, SimTime::from_millis(100.0 * i as f64));
        }
        cloud.run_until(SEC(60.0));
        cloud.drain_completions()
    };
    let interleaved = {
        let mut cloud = CloudSim::new(test_provider(), 33);
        let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(40.0).build()).unwrap();
        cloud.open_submission_window(50);
        for i in 0..50u64 {
            let at = SimTime::from_millis(100.0 * i as f64);
            // Drain the event queue right up to the submission instant
            // before submitting, the worst case for divergence.
            cloud.run_until(at);
            cloud.submit(f, i, at);
        }
        cloud.close_submission_window();
        cloud.run_until(SEC(60.0));
        cloud.drain_completions()
    };
    assert_eq!(up_front.len(), interleaved.len());
    for (a, b) in up_front.iter().zip(&interleaved) {
        assert_eq!(a.tag, b.tag);
        assert_eq!(a.completed_at, b.completed_at);
        assert_eq!(a.breakdown, b.breakdown);
    }
}

// ---- client cancellation (tail-tolerance policies) ------------------------

#[test]
fn cancel_mid_execution_frees_instance_and_books_partial_waste() {
    let mut cloud = CloudSim::new(test_provider(), 11);
    let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(1_000.0).build()).unwrap();
    let rid = cloud.submit(f, 0, SimTime::ZERO);
    // Warm path reaches the instance around 270ms (cold boot included);
    // cancel well inside the 1s execution.
    cloud.run_until(SimTime::from_millis(600.0));
    cloud.cancel(rid);
    cloud.run_until(SimTime::from_millis(700.0));
    assert!(cloud.drain_completions().is_empty(), "cancelled request must not complete");
    let cs = cloud.cancel_stats();
    assert_eq!(cs.cancelled, 1);
    assert_eq!(cs.cancelled_unstarted, 0);
    // The request occupied the instance from assignment (~280ms) to the
    // cancel at 600ms: partial waste, strictly less than the full 1s.
    assert!(
        cs.wasted_busy_ms > 100.0 && cs.wasted_busy_ms < 1_000.0,
        "partial waste, got {}",
        cs.wasted_busy_ms
    );
    // The instance is released (before its keep-alive expires) and
    // serves the next request warm.
    assert_eq!(cloud.live_instances(f), 1);
    let warm = run_one(&mut cloud, f, SimTime::from_millis(800.0));
    assert!(!warm.cold, "cancel must free the instance for warm reuse");
}

#[test]
fn cancel_before_reaching_an_instance_counts_as_unstarted() {
    let mut cloud = CloudSim::new(test_provider(), 12);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    let rid = cloud.submit(f, 0, SimTime::ZERO);
    // Cancel before any simulation progress: the request is still on the
    // client→frontend propagation leg.
    cloud.cancel(rid);
    cloud.run_to_idle();
    assert!(cloud.drain_completions().is_empty());
    let cs = cloud.cancel_stats();
    assert_eq!(cs.cancelled, 1);
    assert_eq!(cs.cancelled_unstarted, 1);
    assert_eq!(cs.wasted_busy_ms, 0.0, "no instance time consumed");
}

#[test]
fn cancel_after_completion_is_a_noop() {
    let mut cloud = CloudSim::new(test_provider(), 13);
    let f = cloud.deploy(FunctionSpec::builder("f").build()).unwrap();
    let rid = cloud.submit(f, 0, SimTime::ZERO);
    cloud.run_until(SEC(20.0));
    cloud.cancel(rid);
    cloud.run_to_idle();
    assert_eq!(cloud.drain_completions().len(), 1, "completion already recorded stays");
    assert_eq!(cloud.cancel_stats().cancelled, 0, "late cancel is a no-op");
}

#[test]
fn cancel_cascades_into_an_in_flight_chain_hop() {
    let mut cloud = CloudSim::new(test_provider(), 14);
    let g = cloud.deploy(FunctionSpec::builder("g").exec_constant_ms(2_000.0).build()).unwrap();
    let f = cloud
        .deploy(
            FunctionSpec::builder("f")
                .exec_constant_ms(10.0)
                .chain(g, TransferMode::Inline, 1_000)
                .build(),
        )
        .unwrap();
    let rid = cloud.submit(f, 0, SimTime::ZERO);
    // By 1.5s the producer finished its own compute and is waiting on the
    // consumer, which is mid-execution.
    cloud.run_until(SimTime::from_millis(1_500.0));
    cloud.cancel(rid);
    cloud.run_until(SimTime::from_millis(1_600.0));
    assert!(cloud.drain_completions().is_empty(), "cancelled chain must not complete");
    let cs = cloud.cancel_stats();
    assert_eq!(cs.cancelled, 2, "producer and its hop are both cancelled");
    assert!(cs.wasted_busy_ms > 0.0);
    // Both instances are free again (before keep-alive expiry): a fresh
    // request reuses the producer's instance warm.
    assert_eq!(cloud.live_instances(f), 1);
    assert_eq!(cloud.live_instances(g), 1);
    let warm_f = run_one(&mut cloud, f, SimTime::from_millis(1_800.0));
    assert!(!warm_f.cold, "producer instance must be reusable");
}

#[test]
fn cancel_does_not_perturb_unrelated_requests() {
    // Two interleaved request streams; cancelling one's requests must not
    // change the other's completion times (cancellation draws no RNG).
    let run = |with_cancels: bool| {
        let mut cloud = CloudSim::new(test_provider(), 15);
        let f = cloud.deploy(FunctionSpec::builder("f").exec_constant_ms(50.0).build()).unwrap();
        let mut victims = Vec::new();
        for i in 0..20u64 {
            let at = SimTime::from_millis(500.0 * i as f64);
            cloud.run_until(at);
            let rid = cloud.submit(f, i, at);
            if i % 2 == 1 {
                victims.push((rid, at));
            }
        }
        if with_cancels {
            for (rid, _) in &victims {
                cloud.cancel(*rid);
            }
        }
        cloud.run_to_idle();
        cloud
            .drain_completions()
            .into_iter()
            .filter(|c| c.tag % 2 == 0)
            .map(|c| (c.tag, c.completed_at))
            .collect::<Vec<_>>()
    };
    // Cancels issued after all even-tag requests were already submitted
    // and (mostly) served; the even stream's timing must be identical.
    assert_eq!(run(false), run(true));
}
