//! Injection and degradation counters.

use serde::{Deserialize, Serialize};

/// Counters for fault injection and graceful degradation, kept by the
/// cloud alongside `CloudStats`.
///
/// Conservation law (external requests only): every submitted request
/// lands in exactly one terminal bucket, so
/// `shed + completed + failed + cancelled == submitted`, and each request
/// absorbs at most one injection, so `injected <= submitted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// External requests offered to the cloud while faults were installed.
    pub submitted: u64,
    /// Fault events that hit a request (transient + crash + shed).
    pub injected: u64,
    /// Requests rejected at the front end with a provider-style error.
    pub transient_errors: u64,
    /// Executions killed mid-flight (instance died, client saw a 500).
    pub crashes: u64,
    /// Requests refused by admission control with a 503.
    pub shed: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that completed with an error (transient or crash).
    pub failed: u64,
    /// Requests cancelled by the client before resolution.
    pub cancelled: u64,
    /// Idle instances reaped by purge-storm events.
    pub purged_instances: u64,
    /// Purge-storm events fired.
    pub storms: u64,
    /// Instance boots deferred by a capacity-outage window.
    pub outage_deferrals: u64,
    /// Busy milliseconds thrown away by crashes (work done, result lost).
    pub wasted_busy_ms: f64,
}

impl FaultStats {
    /// Fraction of resolved requests that succeeded:
    /// `completed / (completed + failed + shed)`. Cancelled requests are
    /// excluded (the client walked away; the cloud didn't fail them).
    /// Returns 1.0 when nothing has resolved yet.
    pub fn availability(&self) -> f64 {
        let denom = self.completed + self.failed + self.shed;
        if denom == 0 {
            1.0
        } else {
            self.completed as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_of_empty_stats_is_one() {
        assert_eq!(FaultStats::default().availability(), 1.0);
    }

    #[test]
    fn availability_counts_shed_and_failed_against_goodput() {
        let stats = FaultStats {
            completed: 90,
            failed: 5,
            shed: 5,
            cancelled: 17, // excluded from the denominator
            ..FaultStats::default()
        };
        assert!((stats.availability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let stats = FaultStats {
            submitted: 100,
            injected: 10,
            transient_errors: 4,
            crashes: 3,
            shed: 3,
            completed: 90,
            failed: 7,
            cancelled: 0,
            purged_instances: 12,
            storms: 2,
            outage_deferrals: 5,
            wasted_busy_ms: 123.5,
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: FaultStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
