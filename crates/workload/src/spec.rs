//! Serde-backed workload specifications.
//!
//! [`WorkloadSpec`] is the config-file / CLI surface of the workload
//! subsystem: an arrival-shape tree ([`ArrivalSpec`]) plus a client loop
//! mode ([`ModeSpec`]). The `Fixed`/`Exponential`/`Uniform` variants use
//! the exact field names and `kind` tags of the legacy `IatSpec`, so any
//! old IAT stanza parses unchanged as an arrival spec — `WorkloadSpec`
//! subsumes it.

use serde::{Deserialize, Serialize};
use simkit::rng::Rng;
use simkit::time::SimTime;

use crate::arrival::{self, ArrivalProcess};

/// Arrival-shape specification; builds an [`ArrivalProcess`] via
/// [`ArrivalSpec::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum ArrivalSpec {
    /// Constant gaps (the paper's baseline IAT mode).
    Fixed {
        /// Gap between arrivals, ms.
        ms: f64,
    },
    /// Exponential gaps (homogeneous Poisson stream).
    Exponential {
        /// Mean gap, ms.
        mean_ms: f64,
    },
    /// Uniformly distributed gaps.
    Uniform {
        /// Lower gap bound, ms.
        lo_ms: f64,
        /// Upper gap bound, ms.
        hi_ms: f64,
    },
    /// Gamma gaps: CV = 1/√shape.
    Gamma {
        /// Shape parameter (k).
        shape: f64,
        /// Mean gap, ms.
        mean_ms: f64,
    },
    /// Weibull gaps: heavy-tailed for shape < 1.
    Weibull {
        /// Shape parameter (k).
        shape: f64,
        /// Scale parameter (λ), ms.
        scale_ms: f64,
    },
    /// Two-state Markov-modulated Poisson bursts (generalizes the paper's
    /// `burst_size` knob to stochastic burst trains).
    Mmpp {
        /// Mean dwell in the bursting state, ms.
        on_mean_ms: f64,
        /// Mean dwell in the quiet state, ms.
        off_mean_ms: f64,
        /// Arrival rate while bursting, per second.
        on_rate_per_s: f64,
        /// Arrival rate while quiet, per second.
        off_rate_per_s: f64,
    },
    /// Sinusoid-modulated Poisson arrivals (diurnal cycles).
    Diurnal {
        /// Time-averaged rate, per second.
        base_rate_per_s: f64,
        /// Relative modulation depth in [0, 1].
        amplitude: f64,
        /// Modulation period, ms.
        period_ms: f64,
    },
    /// Replay of per-function invocation schedules derived from a
    /// synthetic Azure trace (the `azure-trace` crate's generator,
    /// calibrated to the paper's §VII-B marginals).
    TraceReplay {
        /// Number of trace functions to generate and replay.
        functions: u32,
        /// Replay horizon, ms: arrivals are generated on `[0, horizon)`.
        horizon_ms: f64,
        /// Window the trace's per-function invocation counts are
        /// interpreted against, ms (rate = count / window).
        trace_window_ms: f64,
    },
    /// Superposition of independent streams (multi-tenant mix). Each part
    /// occupies its own source-index range, in order.
    Superpose {
        /// The component streams.
        parts: Vec<ArrivalPart>,
    },
    /// Rate-scales an inner spec by `factor`, preserving its shape.
    Scaled {
        /// Rate multiplier (> 1 speeds up).
        factor: f64,
        /// The spec being scaled.
        inner: Box<ArrivalSpec>,
    },
}

/// One tenant stream inside [`ArrivalSpec::Superpose`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalPart {
    /// Rate multiplier applied to this part (default 1.0).
    #[serde(default = "default_weight")]
    pub weight: f64,
    /// The part's arrival shape.
    pub arrival: ArrivalSpec,
}

fn default_weight() -> f64 {
    1.0
}

/// Client loop mode.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "mode")]
pub enum ModeSpec {
    /// Open loop: arrivals are submitted at their generated instants
    /// regardless of outstanding work (the paper's client shape).
    #[default]
    Open,
    /// Closed loop: `concurrency` virtual users each cycle
    /// submit → await completion → think → resubmit. The workload's
    /// arrival process supplies the per-user think-time gaps.
    Closed {
        /// Number of virtual users (outstanding-request cap).
        concurrency: u32,
    },
}

/// A complete workload model: arrival shape plus loop mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Arrival shape (think-time shape in closed-loop mode).
    pub arrival: ArrivalSpec,
    /// Loop mode; open loop when omitted.
    #[serde(default)]
    pub mode: ModeSpec,
}

fn positive(value: f64, what: &str) -> Result<(), String> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(format!("{what} must be positive and finite, got {value}"))
    }
}

fn non_negative(value: f64, what: &str) -> Result<(), String> {
    if value >= 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(format!("{what} must be non-negative and finite, got {value}"))
    }
}

impl ArrivalSpec {
    /// Validates parameters (recursively for combinators).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ArrivalSpec::Fixed { ms } => non_negative(*ms, "fixed iat"),
            ArrivalSpec::Exponential { mean_ms } => positive(*mean_ms, "exponential mean"),
            ArrivalSpec::Uniform { lo_ms, hi_ms } => {
                non_negative(*lo_ms, "uniform lower bound")?;
                if hi_ms < lo_ms {
                    return Err(format!("uniform bounds inverted: [{lo_ms}, {hi_ms}]"));
                }
                non_negative(*hi_ms, "uniform upper bound")
            }
            ArrivalSpec::Gamma { shape, mean_ms } => {
                positive(*shape, "gamma shape")?;
                positive(*mean_ms, "gamma mean")
            }
            ArrivalSpec::Weibull { shape, scale_ms } => {
                positive(*shape, "weibull shape")?;
                positive(*scale_ms, "weibull scale")
            }
            ArrivalSpec::Mmpp { on_mean_ms, off_mean_ms, on_rate_per_s, off_rate_per_s } => {
                positive(*on_mean_ms, "mmpp on dwell")?;
                positive(*off_mean_ms, "mmpp off dwell")?;
                positive(*on_rate_per_s, "mmpp on rate")?;
                non_negative(*off_rate_per_s, "mmpp off rate")
            }
            ArrivalSpec::Diurnal { base_rate_per_s, amplitude, period_ms } => {
                positive(*base_rate_per_s, "diurnal base rate")?;
                if !(0.0..=1.0).contains(amplitude) {
                    return Err(format!("diurnal amplitude must be in [0, 1], got {amplitude}"));
                }
                positive(*period_ms, "diurnal period")
            }
            ArrivalSpec::TraceReplay { functions, horizon_ms, trace_window_ms } => {
                if *functions == 0 {
                    return Err("trace replay needs at least one function".into());
                }
                positive(*horizon_ms, "trace replay horizon")?;
                positive(*trace_window_ms, "trace window")
            }
            ArrivalSpec::Superpose { parts } => {
                if parts.is_empty() {
                    return Err("superpose needs at least one part".into());
                }
                for part in parts {
                    positive(part.weight, "superpose part weight")?;
                    part.arrival.validate()?;
                }
                Ok(())
            }
            ArrivalSpec::Scaled { factor, inner } => {
                positive(*factor, "scale factor")?;
                inner.validate()
            }
        }
    }

    /// Builds the runnable process. `rng` seeds any construction-time
    /// randomness (trace-replay schedule generation); replay itself and
    /// all other processes draw only from the RNG passed to
    /// [`ArrivalProcess::next_gap_ms`].
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ArrivalSpec::validate`].
    pub fn build(&self, rng: &mut Rng) -> Box<dyn ArrivalProcess> {
        self.validate().expect("invalid arrival spec");
        self.build_unchecked(rng)
    }

    fn build_unchecked(&self, rng: &mut Rng) -> Box<dyn ArrivalProcess> {
        match self {
            ArrivalSpec::Fixed { ms } => Box::new(arrival::Fixed { gap_ms: *ms }),
            ArrivalSpec::Exponential { mean_ms } => {
                Box::new(arrival::Poisson { mean_ms: *mean_ms })
            }
            ArrivalSpec::Uniform { lo_ms, hi_ms } => {
                Box::new(arrival::Uniform { lo_ms: *lo_ms, hi_ms: *hi_ms })
            }
            ArrivalSpec::Gamma { shape, mean_ms } => {
                Box::new(arrival::Gamma { shape: *shape, mean_ms: *mean_ms })
            }
            ArrivalSpec::Weibull { shape, scale_ms } => {
                Box::new(arrival::Weibull { shape: *shape, scale_ms: *scale_ms })
            }
            ArrivalSpec::Mmpp { on_mean_ms, off_mean_ms, on_rate_per_s, off_rate_per_s } => {
                Box::new(arrival::Mmpp::new(
                    *on_mean_ms,
                    *off_mean_ms,
                    *on_rate_per_s,
                    *off_rate_per_s,
                ))
            }
            ArrivalSpec::Diurnal { base_rate_per_s, amplitude, period_ms } => {
                Box::new(arrival::Diurnal::new(*base_rate_per_s, *amplitude, *period_ms))
            }
            ArrivalSpec::TraceReplay { functions, horizon_ms, trace_window_ms } => {
                let cfg = azure_trace::synth::SynthConfig::paper_defaults(*functions as usize);
                let records = azure_trace::synth::generate(&cfg, rng.next_u64());
                let horizon = SimTime::from_millis(*horizon_ms);
                let window = SimTime::from_millis(*trace_window_ms);
                let mut sched_rng = rng.fork("trace-replay-schedule");
                let schedules: Vec<Vec<SimTime>> = records
                    .iter()
                    .map(|r| {
                        azure_trace::synth::invocation_schedule(r, horizon, window, &mut sched_rng)
                    })
                    .collect();
                Box::new(arrival::TraceReplay::from_schedules(&schedules))
            }
            ArrivalSpec::Superpose { parts } => {
                let built = parts
                    .iter()
                    .map(|part| {
                        let inner = part.arrival.build_unchecked(rng);
                        if (part.weight - 1.0).abs() < f64::EPSILON {
                            inner
                        } else {
                            Box::new(arrival::Scaled { factor: part.weight, inner })
                                as Box<dyn ArrivalProcess>
                        }
                    })
                    .collect();
                Box::new(arrival::Superpose::new(built))
            }
            ArrivalSpec::Scaled { factor, inner } => {
                Box::new(arrival::Scaled { factor: *factor, inner: inner.build_unchecked(rng) })
            }
        }
    }
}

impl WorkloadSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if let ModeSpec::Closed { concurrency } = self.mode {
            if concurrency == 0 {
                return Err("closed-loop concurrency must be positive".into());
            }
        }
        self.arrival.validate()
    }

    /// Builds the arrival process, deriving all construction-time
    /// randomness from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    pub fn build(&self, seed: u64) -> Box<dyn ArrivalProcess> {
        self.validate().expect("invalid workload spec");
        let mut rng = Rng::seed_from(seed).fork("workload-build");
        self.arrival.build(&mut rng)
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse or validation error message.
    pub fn from_json(text: &str) -> Result<WorkloadSpec, String> {
        let spec: WorkloadSpec = serde_json::from_str(text).map_err(|e| e.to_string())?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("workload spec serializes")
    }

    /// A named built-in workload, or `None` for unknown names. See
    /// [`WorkloadSpec::preset_names`].
    pub fn preset(name: &str) -> Option<WorkloadSpec> {
        let spec = match name {
            "poisson" => WorkloadSpec {
                arrival: ArrivalSpec::Exponential { mean_ms: 100.0 },
                mode: ModeSpec::Open,
            },
            "mmpp-burst" => WorkloadSpec {
                arrival: ArrivalSpec::Mmpp {
                    on_mean_ms: 200.0,
                    off_mean_ms: 2_000.0,
                    on_rate_per_s: 200.0,
                    off_rate_per_s: 2.0,
                },
                mode: ModeSpec::Open,
            },
            "diurnal" => WorkloadSpec {
                arrival: ArrivalSpec::Diurnal {
                    base_rate_per_s: 50.0,
                    amplitude: 0.8,
                    period_ms: 60_000.0,
                },
                mode: ModeSpec::Open,
            },
            "trace-replay" => WorkloadSpec {
                arrival: ArrivalSpec::TraceReplay {
                    functions: 20,
                    horizon_ms: 120_000.0,
                    trace_window_ms: 600_000.0,
                },
                mode: ModeSpec::Open,
            },
            "closed-loop" => WorkloadSpec {
                arrival: ArrivalSpec::Exponential { mean_ms: 250.0 },
                mode: ModeSpec::Closed { concurrency: 16 },
            },
            "multi-tenant" => WorkloadSpec {
                arrival: ArrivalSpec::Superpose {
                    parts: vec![
                        ArrivalPart {
                            weight: 1.0,
                            arrival: ArrivalSpec::Exponential { mean_ms: 50.0 },
                        },
                        ArrivalPart {
                            weight: 1.0,
                            arrival: ArrivalSpec::Mmpp {
                                on_mean_ms: 150.0,
                                off_mean_ms: 1_500.0,
                                on_rate_per_s: 150.0,
                                off_rate_per_s: 0.0,
                            },
                        },
                        ArrivalPart {
                            weight: 2.0,
                            arrival: ArrivalSpec::Exponential { mean_ms: 400.0 },
                        },
                    ],
                },
                mode: ModeSpec::Open,
            },
            _ => return None,
        };
        Some(spec)
    }

    /// Names accepted by [`WorkloadSpec::preset`].
    pub fn preset_names() -> &'static [&'static str] {
        &["poisson", "mmpp-burst", "diurnal", "trace-replay", "closed-loop", "multi-tenant"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_buildable() {
        for name in WorkloadSpec::preset_names() {
            let spec = WorkloadSpec::preset(name).unwrap();
            spec.validate().unwrap_or_else(|e| panic!("preset {name}: {e}"));
            let _process = spec.build(7);
        }
        assert!(WorkloadSpec::preset("no-such-preset").is_none());
    }

    #[test]
    fn json_round_trip_preserves_every_preset() {
        for name in WorkloadSpec::preset_names() {
            let spec = WorkloadSpec::preset(name).unwrap();
            let json = spec.to_json();
            let back = WorkloadSpec::from_json(&json)
                .unwrap_or_else(|e| panic!("preset {name} round trip: {e}\n{json}"));
            assert_eq!(back, spec, "preset {name}");
        }
    }

    #[test]
    fn legacy_iat_stanza_parses_as_arrival() {
        // The exact JSON shape of the legacy IatSpec::Fixed.
        let arrival: ArrivalSpec =
            serde_json::from_str(r#"{"kind": "fixed", "ms": 3000.0}"#).unwrap();
        assert_eq!(arrival, ArrivalSpec::Fixed { ms: 3000.0 });
        let arrival: ArrivalSpec =
            serde_json::from_str(r#"{"kind": "exponential", "mean_ms": 50.0}"#).unwrap();
        assert_eq!(arrival, ArrivalSpec::Exponential { mean_ms: 50.0 });
    }

    #[test]
    fn mode_defaults_to_open() {
        let spec =
            WorkloadSpec::from_json(r#"{"arrival": {"kind": "fixed", "ms": 100.0}}"#).unwrap();
        assert_eq!(spec.mode, ModeSpec::Open);
    }

    #[test]
    fn nested_combinators_round_trip() {
        let spec = WorkloadSpec {
            arrival: ArrivalSpec::Scaled {
                factor: 2.0,
                inner: Box::new(ArrivalSpec::Superpose {
                    parts: vec![
                        ArrivalPart {
                            weight: 1.0,
                            arrival: ArrivalSpec::Gamma { shape: 0.5, mean_ms: 80.0 },
                        },
                        ArrivalPart {
                            weight: 3.0,
                            arrival: ArrivalSpec::Weibull { shape: 0.7, scale_ms: 40.0 },
                        },
                    ],
                }),
            },
            mode: ModeSpec::Closed { concurrency: 4 },
        };
        let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(ArrivalSpec::Exponential { mean_ms: 0.0 }.validate().is_err());
        assert!(ArrivalSpec::Uniform { lo_ms: 5.0, hi_ms: 1.0 }.validate().is_err());
        assert!(ArrivalSpec::Gamma { shape: -1.0, mean_ms: 10.0 }.validate().is_err());
        assert!(ArrivalSpec::Diurnal { base_rate_per_s: 10.0, amplitude: 1.5, period_ms: 100.0 }
            .validate()
            .is_err());
        assert!(ArrivalSpec::TraceReplay { functions: 0, horizon_ms: 1.0, trace_window_ms: 1.0 }
            .validate()
            .is_err());
        assert!(ArrivalSpec::Superpose { parts: vec![] }.validate().is_err());
        let closed_zero = WorkloadSpec {
            arrival: ArrivalSpec::Fixed { ms: 1.0 },
            mode: ModeSpec::Closed { concurrency: 0 },
        };
        assert!(closed_zero.validate().is_err());
    }

    #[test]
    fn weight_defaults_to_one() {
        let json = r#"{"arrival": {"kind": "superpose", "parts": [
            {"arrival": {"kind": "fixed", "ms": 10.0}}
        ]}}"#;
        let spec = WorkloadSpec::from_json(json).unwrap();
        match &spec.arrival {
            ArrivalSpec::Superpose { parts } => assert_eq!(parts[0].weight, 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_replay_build_is_deterministic() {
        let spec = WorkloadSpec::preset("trace-replay").unwrap();
        let mut rng_a = Rng::seed_from(1);
        let mut rng_b = Rng::seed_from(1);
        let mut a = spec.build(11);
        let mut b = spec.build(11);
        assert_eq!(a.remaining(), b.remaining());
        for _ in 0..50 {
            let ga = a.next_gap_ms(&mut rng_a);
            let gb = b.next_gap_ms(&mut rng_b);
            assert_eq!(ga.to_bits(), gb.to_bits());
            assert_eq!(a.source(), b.source());
        }
    }
}
