//! The discrete-event simulation engine.
//!
//! The engine is a time-ordered priority queue of typed events plus a
//! dispatch loop. A simulation is a [`Model`] (user state + event handler)
//! driven by a [`Simulation`], which owns the event queue via a
//! [`Scheduler`]. The handler receives the scheduler so it can post future
//! events while processing the current one.
//!
//! Events at equal timestamps are delivered in FIFO insertion order (a
//! monotone sequence number breaks ties), which makes simulations fully
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// User-provided simulation state and event handler.
pub trait Model {
    /// The event type dispatched by the engine.
    type Event;

    /// Handles one event occurring at simulated time `now`. New events may
    /// be posted through `sched`; they must not be scheduled in the past.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pending-event queue handed to [`Model::handle`].
#[derive(Default)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule in the past: {at} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimTime, event: E) {
        self.schedule_at(now + delay, event);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Reserves capacity for at least `additional` more pending events, so
    /// a workload of known size never reallocates the heap mid-run.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

/// A running simulation: a [`Model`] plus its event queue and clock.
///
/// # Examples
///
/// See the crate-level documentation for a complete example.
pub struct Simulation<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    processed: u64,
}

impl<M: Model + std::fmt::Debug> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("model", &self.model)
            .field("sched", &self.sched)
            .field("processed", &self.processed)
            .finish()
    }
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation around `model` with an empty event queue at
    /// time zero.
    pub fn new(model: M) -> Self {
        Simulation { model, sched: Scheduler::new(), processed: 0 }
    }

    /// Current simulated time (time of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an event at absolute time `at` (before or during a run).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        self.sched.schedule_at(at, event);
    }

    /// Pre-sizes the event queue for at least `additional` more pending
    /// events (see [`Scheduler::reserve`]).
    pub fn reserve_events(&mut self, additional: usize) {
        self.sched.reserve(additional);
    }

    /// Dispatches the next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.heap.pop() {
            Some(entry) => {
                debug_assert!(entry.at >= self.sched.now);
                self.sched.now = entry.at;
                self.processed += 1;
                self.model.handle(entry.at, entry.event, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the next event is later than
    /// `horizon`. Events exactly at `horizon` are processed, and the clock
    /// always advances to `horizon` so repeated calls compose and state
    /// snapshots taken afterwards see the full elapsed time.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
        if self.sched.now < horizon {
            self.sched.now = horizon;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Mark(u32),
        Chain(u32),
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Mark(id) => self.seen.push((now, id)),
                Ev::Chain(n) => {
                    self.seen.push((now, n));
                    if n > 0 {
                        sched.schedule_in(now, SimTime::from_millis(1.0), Ev::Chain(n - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn events_dispatch_in_time_order() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::from_millis(30.0), Ev::Mark(3));
        sim.schedule_at(SimTime::from_millis(10.0), Ev::Mark(1));
        sim.schedule_at(SimTime::from_millis(20.0), Ev::Mark(2));
        sim.run();
        let ids: Vec<u32> = sim.model().seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30.0));
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut sim = Simulation::new(Recorder::default());
        let t = SimTime::from_millis(5.0);
        for id in 0..20 {
            sim.schedule_at(t, Ev::Mark(id));
        }
        sim.run();
        let ids: Vec<u32> = sim.model().seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::ZERO, Ev::Chain(4));
        sim.run();
        assert_eq!(sim.model().seen.len(), 5);
        assert_eq!(sim.now(), SimTime::from_millis(4.0));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::ZERO, Ev::Chain(100));
        sim.run_until(SimTime::from_millis(10.0));
        assert_eq!(sim.model().seen.len(), 11); // t = 0..=10ms
        assert_eq!(sim.now(), SimTime::from_millis(10.0));
        // Remaining events still fire on the next run.
        sim.run();
        assert_eq!(sim.model().seen.len(), 101);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim = Simulation::new(Recorder::default());
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.now(), SimTime::from_secs(1.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_at(now.saturating_sub(SimTime::from_nanos(1)), ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule_at(SimTime::from_millis(1.0), ());
        sim.run();
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut sim = Simulation::new(Recorder::default());
        assert!(!sim.step());
    }

    #[test]
    fn into_model_returns_state() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::ZERO, Ev::Mark(7));
        sim.run();
        let model = sim.into_model();
        assert_eq!(model.seen, vec![(SimTime::ZERO, 7)]);
    }
}
