//! Synthetic trace generation.
//!
//! We do not ship the real Azure trace; instead this generator produces a
//! population of per-function duration records whose *published aggregate
//! properties* match what the paper reads off the trace:
//!
//! * medians span milliseconds to minutes, with roughly half the functions
//!   around one second (§VI-D3) and >70% under ten seconds (§VI-C1);
//! * per-function variability such that ~70% of all functions have
//!   TMR < 10, ~60% of sub-second functions, and ~90% of >10 s functions
//!   (§VII-B / Fig 10) — short functions are noisier.
//!
//! Each function's execution time is modelled as a log-normal whose shape
//! parameter is drawn per function, negatively correlated with the median.

use simkit::dist::Z99;
use simkit::rng::Rng;

use crate::record::FunctionDurationRecord;

/// Tunable generator parameters; [`SynthConfig::paper_defaults`] matches
/// the marginals above.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of functions to generate.
    pub functions: usize,
    /// Mixture weights for (short <1 s, medium 1–10 s, long ≥10 s) median
    /// classes; normalised internally.
    pub class_weights: [f64; 3],
    /// Per-class log10-median ranges (ms).
    pub class_log10_median_ms: [(f64, f64); 3],
    /// Per-class log-normal parameters of the per-function shape σ:
    /// `(median_sigma, sigma_of_log_sigma)`.
    pub class_sigma: [(f64, f64); 3],
}

impl SynthConfig {
    /// Parameters calibrated to the trace properties the paper cites.
    pub fn paper_defaults(functions: usize) -> SynthConfig {
        SynthConfig {
            functions,
            class_weights: [0.45, 0.30, 0.25],
            class_log10_median_ms: [
                (0.7, 3.0), // 5 ms .. 1 s
                (3.0, 4.0), // 1 s .. 10 s
                (4.0, 5.5), // 10 s .. ~5 min
            ],
            // P(sigma < ln(10)/Z99 = 0.99) per class: ~0.60 / ~0.68 / ~0.90.
            class_sigma: [(0.85, 0.50), (0.78, 0.55), (0.45, 0.55)],
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.functions == 0 {
            return Err("functions must be positive".into());
        }
        if self.class_weights.iter().any(|&w| w < 0.0)
            || self.class_weights.iter().sum::<f64>() <= 0.0
        {
            return Err("class weights must be non-negative and not all zero".into());
        }
        for (lo, hi) in self.class_log10_median_ms {
            if lo > hi {
                return Err(format!("log10 median range inverted: [{lo}, {hi}]"));
            }
        }
        for (med, spread) in self.class_sigma {
            if med <= 0.0 || spread <= 0.0 {
                return Err("sigma parameters must be positive".into());
            }
        }
        Ok(())
    }
}

fn sample_standard_normal(rng: &mut Rng) -> f64 {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a synthetic trace.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn generate(cfg: &SynthConfig, seed: u64) -> Vec<FunctionDurationRecord> {
    cfg.validate().expect("invalid synth config");
    let mut rng = Rng::seed_from(seed).fork("azure-trace-synth");
    let total_weight: f64 = cfg.class_weights.iter().sum();
    let mut records = Vec::with_capacity(cfg.functions);
    for i in 0..cfg.functions {
        // Pick a duration class.
        let mut pick = rng.next_f64() * total_weight;
        let mut class = 2;
        for (c, &w) in cfg.class_weights.iter().enumerate() {
            if pick < w {
                class = c;
                break;
            }
            pick -= w;
        }
        let (lo, hi) = cfg.class_log10_median_ms[class];
        let median_ms = 10f64.powf(rng.range_f64(lo, hi));
        // Per-function shape, log-normally distributed around the class
        // median sigma.
        let (sig_med, sig_spread) = cfg.class_sigma[class];
        let sigma = (sig_med.ln() + sig_spread * sample_standard_normal(&mut rng)).exp();

        let mu = median_ms.ln();
        let q = |z: f64| (mu + sigma * z).exp();
        let p0 = q(-3.2);
        let p100 = q(3.2 + rng.next_f64() * 1.2);
        let average = (mu + sigma * sigma / 2.0).exp().clamp(p0, p100);
        // Invocation counts follow a heavy-tailed popularity distribution.
        let count = (10.0 / rng.next_f64_open().powf(1.2)) as u64 + 1;
        records.push(FunctionDurationRecord {
            owner: format!("owner{:04}", i % 977),
            app: format!("app{:05}", i % 4931),
            function: format!("func{i:06}"),
            count,
            average_ms: average,
            p0,
            p1: q(-Z99),
            p25: q(-0.6745),
            p50: median_ms,
            p75: q(0.6745),
            p99: q(Z99),
            p100,
        });
    }
    records
}

/// Generates a Poisson invocation schedule for one trace function over
/// `[0, horizon)`, with the arrival rate derived from the record's
/// invocation `count` interpreted against `trace_window` (the real trace
/// aggregates two weeks of invocations).
///
/// # Panics
///
/// Panics if `horizon` or `trace_window` is zero.
pub fn invocation_schedule(
    record: &FunctionDurationRecord,
    horizon: simkit::time::SimTime,
    trace_window: simkit::time::SimTime,
    rng: &mut Rng,
) -> Vec<simkit::time::SimTime> {
    assert!(!horizon.is_zero(), "horizon must be positive");
    assert!(!trace_window.is_zero(), "trace window must be positive");
    let rate_per_ms = record.count as f64 / trace_window.as_millis();
    let mean_iat_ms = 1.0 / rate_per_ms.max(1e-12);
    let mut schedule = Vec::new();
    let mut t = simkit::time::SimTime::ZERO;
    loop {
        t += simkit::time::SimTime::from_millis(-mean_iat_ms * rng.next_f64_open().ln());
        if t >= horizon {
            return schedule;
        }
        schedule.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DurationClass;
    use simkit::time::SimTime;

    fn trace() -> Vec<FunctionDurationRecord> {
        generate(&SynthConfig::paper_defaults(20_000), 7)
    }

    #[test]
    fn all_records_are_valid() {
        for r in trace() {
            r.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&SynthConfig::paper_defaults(100), 3);
        let b = generate(&SynthConfig::paper_defaults(100), 3);
        assert_eq!(a, b);
        let c = generate(&SynthConfig::paper_defaults(100), 4);
        assert_ne!(a, c);
    }

    #[test]
    fn class_mix_matches_weights() {
        let records = trace();
        let n = records.len() as f64;
        let short = records.iter().filter(|r| r.class() == DurationClass::Short).count() as f64 / n;
        let long = records.iter().filter(|r| r.class() == DurationClass::Long).count() as f64 / n;
        assert!((short - 0.45).abs() < 0.03, "short fraction {short}");
        assert!((long - 0.25).abs() < 0.03, "long fraction {long}");
    }

    #[test]
    fn majority_run_under_ten_seconds() {
        // §VI-C1: >70% of functions run <10 s.
        let records = trace();
        let under =
            records.iter().filter(|r| r.p50 < 10_000.0).count() as f64 / records.len() as f64;
        assert!(under > 0.70, "under-10s fraction {under}");
    }

    #[test]
    fn tmr_is_exp_z99_sigma() {
        // By construction TMR = p99/p50 = exp(Z99 * sigma) > 1.
        for r in generate(&SynthConfig::paper_defaults(500), 5) {
            assert!(r.tmr() >= 1.0);
            assert!(r.p99 >= r.p50);
        }
    }

    #[test]
    fn invocation_schedule_matches_rate() {
        let mut records = generate(&SynthConfig::paper_defaults(1), 3);
        let record = &mut records[0];
        record.count = 1000;
        let window = SimTime::from_mins(1000); // rate = 1/min
        let horizon = SimTime::from_mins(600);
        let mut rng = Rng::seed_from(9);
        let schedule = invocation_schedule(record, horizon, window, &mut rng);
        // Expect ~600 arrivals; Poisson std ≈ 24.5.
        assert!((500..700).contains(&schedule.len()), "got {} arrivals", schedule.len());
        // Strictly increasing and inside the horizon.
        assert!(schedule.windows(2).all(|w| w[0] < w[1]));
        assert!(schedule.iter().all(|&t| t < horizon));
    }

    #[test]
    fn invocation_schedule_rare_function_may_be_empty() {
        let mut records = generate(&SynthConfig::paper_defaults(1), 4);
        records[0].count = 1;
        let mut rng = Rng::seed_from(1);
        let schedule = invocation_schedule(
            &records[0],
            SimTime::from_secs(1.0),
            SimTime::from_mins(20_160), // two weeks
            &mut rng,
        );
        assert!(schedule.len() <= 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = SynthConfig::paper_defaults(0);
        assert!(cfg.validate().is_err());
        cfg = SynthConfig::paper_defaults(10);
        cfg.class_weights = [0.0, 0.0, 0.0];
        assert!(cfg.validate().is_err());
        cfg = SynthConfig::paper_defaults(10);
        cfg.class_log10_median_ms[0] = (5.0, 1.0);
        assert!(cfg.validate().is_err());
        cfg = SynthConfig::paper_defaults(10);
        cfg.class_sigma[1] = (-1.0, 0.5);
        assert!(cfg.validate().is_err());
    }
}
