//! Per-component latency analysis.
//!
//! STeLLAR's selling point over end-to-end-only benchmarks is measuring
//! *where* latency comes from (§IV: "accurate measurement of latency
//! contributions from different cloud infrastructure components"). This
//! module aggregates the per-request [`faas_sim::Breakdown`]s of a run
//! into per-component distributions and renders the attribution table.
//!
//! Distributions are accumulated through [`stats::sketch::LatencyAgg`] —
//! the project's single quantile engine — so the table's numbers are
//! exact below the sketch threshold (the usual case for breakdown-sized
//! runs) and carry the sketch's documented rank-error bound beyond it,
//! the same contract as every other figure.

use faas_sim::request::Completion;
use stats::sketch::LatencyAgg;
use stats::summary::Summary;
use stats::table::{fmt_latency, TextTable};

/// The latency components in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// WAN propagation (both directions).
    Propagation,
    /// Front-end processing.
    Frontend,
    /// Load-balancer routing decision.
    Routing,
    /// Serial dispatch wait (bursts).
    DispatchWait,
    /// Inline payload transmission.
    InlineTransfer,
    /// Queue / buffering wait (includes cold boots).
    QueueWait,
    /// Steering to the instance.
    Steer,
    /// In-instance handling overhead.
    Handling,
    /// Storage GET of an incoming payload.
    PayloadGet,
    /// User code execution.
    Execution,
    /// Downstream chain round-trip.
    Chain,
    /// Response path (datacenter internal).
    Response,
}

impl Component {
    /// All components in pipeline order.
    pub const ALL: [Component; 12] = [
        Component::Propagation,
        Component::Frontend,
        Component::Routing,
        Component::DispatchWait,
        Component::InlineTransfer,
        Component::QueueWait,
        Component::Steer,
        Component::Handling,
        Component::PayloadGet,
        Component::Execution,
        Component::Chain,
        Component::Response,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Component::Propagation => "propagation",
            Component::Frontend => "frontend",
            Component::Routing => "routing",
            Component::DispatchWait => "dispatch wait",
            Component::InlineTransfer => "inline transfer",
            Component::QueueWait => "queue wait",
            Component::Steer => "steer",
            Component::Handling => "handling",
            Component::PayloadGet => "payload get",
            Component::Execution => "execution",
            Component::Chain => "chain round-trip",
            Component::Response => "response",
        }
    }

    /// Machine-readable tag, identical to the `component` field of the
    /// trace spans `faas_sim` emits for this pipeline stage (see
    /// [`faas_sim::span_tag`]). Referencing the simulator's constants
    /// keeps the 1:1 alignment checked by the compiler.
    pub fn code(self) -> &'static str {
        match self {
            Component::Propagation => faas_sim::span_tag::PROPAGATION,
            Component::Frontend => faas_sim::span_tag::FRONTEND,
            Component::Routing => faas_sim::span_tag::ROUTING,
            Component::DispatchWait => faas_sim::span_tag::DISPATCH_WAIT,
            Component::InlineTransfer => faas_sim::span_tag::INLINE_TRANSFER,
            Component::QueueWait => faas_sim::span_tag::QUEUE_WAIT,
            Component::Steer => faas_sim::span_tag::STEER,
            Component::Handling => faas_sim::span_tag::HANDLING,
            Component::PayloadGet => faas_sim::span_tag::PAYLOAD_GET,
            Component::Execution => faas_sim::span_tag::EXECUTION,
            Component::Chain => faas_sim::span_tag::CHAIN,
            Component::Response => faas_sim::span_tag::RESPONSE,
        }
    }

    /// Looks up the component carrying trace tag `code`, if any (the
    /// `"request"` root tag maps to no component).
    pub fn from_code(code: &str) -> Option<Component> {
        Component::ALL.iter().copied().find(|c| c.code() == code)
    }

    /// Extracts this component's value (ms) from one completion.
    pub fn extract(self, c: &Completion) -> f64 {
        let b = &c.breakdown;
        match self {
            Component::Propagation => b.prop_out_ms + b.prop_back_ms,
            Component::Frontend => b.frontend_ms,
            Component::Routing => b.routing_ms,
            Component::DispatchWait => b.dispatch_wait_ms,
            Component::InlineTransfer => b.inline_transfer_ms,
            Component::QueueWait => b.queue_wait_ms,
            Component::Steer => b.steer_ms,
            Component::Handling => b.handling_ms,
            Component::PayloadGet => b.payload_get_ms,
            Component::Execution => b.exec_ms,
            Component::Chain => b.chain_ms,
            Component::Response => b.response_ms,
        }
    }
}

/// Aggregated per-component attribution over a set of completions.
#[derive(Debug, Clone)]
pub struct BreakdownAnalysis {
    components: Vec<(Component, Summary)>,
    total_median_ms: f64,
    count: usize,
}

impl BreakdownAnalysis {
    /// Aggregates `completions` (which must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `completions` is empty.
    pub fn compute(completions: &[Completion]) -> BreakdownAnalysis {
        assert!(!completions.is_empty(), "breakdown of empty run");
        let mut total = LatencyAgg::new();
        for c in completions {
            total.record(c.latency_ms());
        }
        let components = Component::ALL
            .iter()
            .map(|&comp| {
                let mut agg = LatencyAgg::new();
                for c in completions {
                    agg.record(comp.extract(c));
                }
                (comp, agg.summary())
            })
            .collect();
        BreakdownAnalysis {
            components,
            total_median_ms: total.quantile(0.5),
            count: completions.len(),
        }
    }

    /// Summary of one component.
    pub fn component(&self, comp: Component) -> &Summary {
        &self.components.iter().find(|(c, _)| *c == comp).expect("all components present").1
    }

    /// The component with the largest median contribution.
    pub fn dominant(&self) -> Component {
        self.components
            .iter()
            .max_by(|a, b| a.1.median.partial_cmp(&b.1.median).expect("no NaN medians"))
            .expect("non-empty")
            .0
    }

    /// The component with the largest p99 − median gap (the tail source).
    pub fn tail_source(&self) -> Component {
        self.components
            .iter()
            .max_by(|a, b| {
                (a.1.tail - a.1.median).partial_cmp(&(b.1.tail - b.1.median)).expect("no NaN tails")
            })
            .expect("non-empty")
            .0
    }

    /// Median end-to-end latency of the analysed run, ms.
    pub fn total_median_ms(&self) -> f64 {
        self.total_median_ms
    }

    /// Renders the attribution table (median share per component).
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["component", "median_ms", "p99_ms", "share_of_median"]);
        for (comp, summary) in &self.components {
            if summary.max == 0.0 {
                continue; // component never exercised in this run
            }
            let share = if self.total_median_ms > 0.0 {
                summary.median / self.total_median_ms * 100.0
            } else {
                0.0
            };
            table.row(vec![
                comp.label().to_string(),
                fmt_latency(summary.median),
                fmt_latency(summary.tail),
                format!("{share:.1}%"),
            ]);
        }
        format!(
            "per-component attribution over {} requests (median e2e {} ms):\n{}",
            self.count,
            fmt_latency(self.total_median_ms),
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
    use crate::experiment::Experiment;
    use faas_sim::testutil::test_provider;

    fn run(exec_ms: f64, warmup: u32, samples: u32) -> Vec<Completion> {
        let mut workload = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, samples);
        workload.warmup_rounds = warmup;
        workload.exec_ms = exec_ms;
        Experiment::new(test_provider())
            .functions(StaticConfig { functions: vec![StaticFunction::python_zip("b")] })
            .workload(workload)
            .seed(1)
            .run()
            .unwrap()
            .result
            .completions
    }

    #[test]
    fn warm_run_is_dominated_by_propagation() {
        // Test provider: 2×10ms propagation vs 20ms overhead split 5 ways.
        let analysis = BreakdownAnalysis::compute(&run(0.0, 1, 50));
        assert_eq!(analysis.dominant(), Component::Propagation);
        let prop = analysis.component(Component::Propagation);
        assert!((prop.median - 20.0).abs() < 0.1);
        assert_eq!(analysis.component(Component::Chain).max, 0.0);
    }

    #[test]
    fn execution_dominates_long_functions() {
        let analysis = BreakdownAnalysis::compute(&run(500.0, 1, 30));
        assert_eq!(analysis.dominant(), Component::Execution);
        assert!((analysis.component(Component::Execution).median - 500.0).abs() < 1e-9);
    }

    #[test]
    fn cold_runs_blame_queue_wait_for_the_tail() {
        // No warm-up: the cold start sits in queue_wait of sample 0.
        let analysis = BreakdownAnalysis::compute(&run(0.0, 0, 20));
        assert_eq!(analysis.tail_source(), Component::QueueWait);
    }

    #[test]
    fn shares_sum_to_total_for_constant_runs() {
        let completions = run(100.0, 1, 40);
        let analysis = BreakdownAnalysis::compute(&completions);
        let sum: f64 = Component::ALL.iter().map(|&c| analysis.component(c).median).sum();
        // With near-constant components, medians are additive.
        assert!(
            (sum - analysis.total_median_ms()).abs() / analysis.total_median_ms() < 0.05,
            "sum of medians {sum} vs total {}",
            analysis.total_median_ms()
        );
    }

    #[test]
    fn render_lists_components() {
        let analysis = BreakdownAnalysis::compute(&run(0.0, 1, 10));
        let text = analysis.render();
        assert!(text.contains("propagation"));
        assert!(text.contains("share_of_median"));
        assert!(!text.contains("chain round-trip"), "unused components hidden");
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn empty_panics() {
        BreakdownAnalysis::compute(&[]);
    }

    #[test]
    fn codes_align_with_simulator_span_tags() {
        let unique: std::collections::HashSet<&str> =
            Component::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(unique.len(), Component::ALL.len(), "codes must be distinct");
        for &c in &Component::ALL {
            assert_eq!(Component::from_code(c.code()), Some(c));
        }
        // The root tag marks whole requests, not a pipeline component.
        assert_eq!(Component::from_code(faas_sim::span_tag::REQUEST), None);
    }
}
