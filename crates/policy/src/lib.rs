//! Tail-tolerance client policies for STeLLAR experiments.
//!
//! A *policy* decides, per logical request, when to launch duplicate
//! attempts (hedging, tied requests), when to give up and retry with
//! backoff, and when to abandon the request outright (deadlines). Each
//! policy is a small event-driven state machine ([`machine::PolicyMachine`]):
//! the measurement harness feeds it lifecycle events and executes the
//! actions it emits. Machines hold fixed-size state and never allocate
//! on the event path, so a driver can attach one per virtual user in a
//! million-invocation run without touching the allocator.
//!
//! Policies are configured through a serde grammar ([`spec::PolicySpec`])
//! with named presets and free composition, and their effects are
//! surfaced through [`stats::PolicyStats`]: hedge-fire rate, wasted-work
//! fraction, duplicate successes, abandon count. The *simulator* stays
//! policy-free — it only learns how to cancel a request; everything else
//! lives client-side, mirroring how a real tail-tolerant client would
//! wrap a provider endpoint.

pub mod machine;
pub mod spec;
pub mod stats;

pub use machine::{Action, Actions, Composite, PolicyEvent, PolicyMachine};
pub use spec::{PolicySpec, ThresholdSpec};
pub use stats::PolicyStats;
