//! Fig 9: scheduling-policy implications — 1-second functions, long IAT,
//! burst sizes 1 and 100 (§VI-D3, Obs 7).

use providers::paper::{self, ProviderKind};
use providers::profiles::config_for;
use stats::summary::Summary;
use stellar_core::protocols::{bursty_invocations, BurstIat};

use crate::report::{comparison_table, Comparison, Report, BASE_SEED};

/// The function execution time the paper fixes (median Azure-trace
/// function, §VI-D3).
pub const EXEC_MS: f64 = 1000.0;

/// Measured data: `(provider, burst, samples)`.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// One cell per (provider, burst size).
    pub cells: Vec<(ProviderKind, u32, Vec<f64>)>,
}

/// Runs the four-cell grid in parallel.
pub fn measure(samples: u32) -> Fig9 {
    let mut cells = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ProviderKind::ALL
            .iter()
            .flat_map(|&kind| [1u32, 100].into_iter().map(move |b| (kind, b)))
            .map(|(kind, burst)| {
                scope.spawn(move |_| {
                    let n = samples.max(burst * 10);
                    let out = bursty_invocations(
                        config_for(kind),
                        BurstIat::Long,
                        burst,
                        EXEC_MS,
                        n,
                        3,
                        BASE_SEED + 50 + burst as u64,
                    )
                    .expect("fig9 run");
                    (kind, burst, out.latencies_ms())
                })
            })
            .collect();
        for handle in handles {
            cells.push(handle.join().expect("experiment thread"));
        }
    })
    .expect("scope");
    Fig9 { cells }
}

impl Fig9 {
    /// Summary for one cell.
    pub fn summary(&self, kind: ProviderKind, burst: u32) -> Option<Summary> {
        self.cells
            .iter()
            .find(|(k, b, _)| *k == kind && *b == burst)
            .map(|(_, _, s)| Summary::from_samples(s))
    }

    /// Paper-vs-measured rows (burst 100 values quoted in §VI-D3).
    pub fn comparisons(&self) -> Vec<Comparison> {
        self.cells
            .iter()
            .map(|(kind, burst, samples)| {
                let (pm, pt) = if *burst == 100 {
                    paper::fig9_burst100_ms(*kind)
                } else {
                    (f64::NAN, f64::NAN)
                };
                Comparison::from_summary(
                    format!("{kind} exec1s b{burst}"),
                    &Summary::from_samples(samples),
                    pm,
                    pt,
                )
            })
            .collect()
    }

    /// Renders the report with the queue-depth interpretation the paper
    /// draws from these numbers.
    pub fn report(&self) -> Report {
        let mut body = comparison_table(&self.comparisons());
        body.push('\n');
        for kind in ProviderKind::ALL {
            if let Some(s) = self.summary(kind, 100) {
                // Max requests that waited behind others ~ p99 minus the
                // cold start, in units of the 1 s execution.
                let depth = ((s.tail - 1000.0) / 1000.0).max(0.0);
                body.push_str(&format!(
                    "{kind}: implied p99 queue depth ≈ {depth:.1} executions\n"
                ));
            }
        }
        Report {
            id: "fig9",
            title: "Scheduling policy under 1 s functions (queue-at-instance)",
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_separation_is_orders_of_magnitude() {
        let data = measure(600);
        let aws = data.summary(ProviderKind::Aws, 100).unwrap();
        let google = data.summary(ProviderKind::Google, 100).unwrap();
        let azure = data.summary(ProviderKind::Azure, 100).unwrap();
        // AWS: nobody queues; everything within ~cold + 1 exec.
        assert!(aws.tail < 3000.0, "aws p99 {}", aws.tail);
        // Google: bounded queueing (≤4).
        assert!(google.median > aws.median);
        assert!(google.tail < 9000.0, "google p99 {}", google.tail);
        // Azure: deep queueing, tens of seconds.
        assert!(azure.median > 10_000.0, "azure median {}", azure.median);
        assert!(azure.tail > 20_000.0, "azure p99 {}", azure.tail);
        // Burst-1 curves are close to each other vs the burst-100 spread.
        let aws1 = data.summary(ProviderKind::Aws, 1).unwrap();
        let azure1 = data.summary(ProviderKind::Azure, 1).unwrap();
        assert!(azure1.median / aws1.median < 3.0, "no queuing potential at burst 1");
        assert!(data.report().render().contains("queue depth"));
    }
}
