//! Property-based tests of the statistics crate.

use proptest::prelude::*;
use stats::bootstrap::bootstrap_ci;
use stats::cdf::Cdf;
use stats::ks::{ks_critical, ks_statistic};
use stats::metrics::FactorRatios;
use stats::percentile::{median, percentile, sorted_percentile};
use stats::sketch::QuantileSketch;
use stats::summary::Summary;

fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e6, 1..300)
}

proptest! {
    /// Percentiles are monotone in q and bounded by min/max.
    #[test]
    fn percentile_monotone_and_bounded(xs in samples_strategy(), qs in prop::collection::vec(0.0f64..=1.0, 2..10)) {
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = percentile(&xs, q);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert_eq!(percentile(&xs, 0.0), lo);
        prop_assert_eq!(percentile(&xs, 1.0), hi);
    }

    /// percentile() equals sorted_percentile() on pre-sorted data.
    #[test]
    fn percentile_agrees_with_sorted(xs in samples_strategy(), q in 0.0f64..=1.0) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(percentile(&xs, q), sorted_percentile(&sorted, q));
    }

    /// Summary quantiles are ordered and the mean sits within [min, max].
    #[test]
    fn summary_ordering(xs in samples_strategy()) {
        let s = Summary::from_samples(&xs);
        prop_assert!(s.min <= s.p25);
        prop_assert!(s.p25 <= s.median);
        prop_assert!(s.median <= s.p75);
        prop_assert!(s.p75 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.tail);
        prop_assert!(s.tail <= s.p999 && s.p999 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.count, xs.len());
    }

    /// A CDF evaluates to [0,1], is monotone, and inverts its quantiles.
    #[test]
    fn cdf_properties(xs in samples_strategy(), q in 0.01f64..=0.99) {
        let cdf = Cdf::from_samples(&xs);
        let v = cdf.quantile(q);
        let f = cdf.eval(v);
        // At least a q-fraction of mass lies at or below the q-quantile.
        prop_assert!(f >= q - 1.0 / xs.len() as f64 - 1e-9, "q={q} f={f}");
        prop_assert!(cdf.eval(f64::NEG_INFINITY) == 0.0);
        prop_assert!((cdf.eval(f64::INFINITY) - 1.0).abs() < 1e-12);
        // Monotone in x.
        let lo = cdf.eval(v - 1.0);
        prop_assert!(lo <= f + 1e-12);
    }

    /// KS distance is within [0, 1], symmetric, and zero against itself.
    #[test]
    fn ks_bounds(a in samples_strategy(), b in samples_strategy()) {
        let d = ks_statistic(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d, ks_statistic(&b, &a));
        prop_assert_eq!(ks_statistic(&a, &a), 0.0);
        prop_assert!(ks_critical(a.len(), b.len(), 0.05) > 0.0);
    }

    /// Bin-count views derived from the sketch conserve mass: summing
    /// rank-below differences over a log-spaced grid plus the under/over
    /// range ranks accounts for every recorded sample. (This is the
    /// primitive the retired histogram shim was built on; below the exact
    /// threshold the ranks are exact counts, not estimates.)
    #[test]
    fn sketch_bin_counts_conserve_mass(xs in prop::collection::vec(0.001f64..1e7, 1..200), bins in 1usize..30) {
        let (lo, hi) = (1.0f64, 1e6f64);
        let mut s = QuantileSketch::new();
        for &x in &xs { s.record(x); }
        prop_assert_eq!(s.count(), xs.len() as u64);
        let ratio = (hi / lo).powf(1.0 / bins as f64);
        let mut binned = 0.0;
        for i in 0..bins {
            let e_lo = lo * ratio.powi(i as i32);
            let e_hi = if i + 1 == bins { hi } else { lo * ratio.powi(i as i32 + 1) };
            binned += s.rank_below(e_hi) - s.rank_below(e_lo);
        }
        let underflow = s.rank_below(lo);
        let overflow = s.count() as f64 - s.rank_below(hi);
        prop_assert!(
            (binned + underflow + overflow - xs.len() as f64).abs() < 1e-6,
            "binned={binned} under={underflow} over={overflow} n={}", xs.len()
        );
    }

    /// A recorded value is visible to rank queries exactly where it sits:
    /// `rank_below` jumps by one across the value and the CDF brackets it,
    /// so any bin whose edges contain the value counts it.
    #[test]
    fn sketch_rank_brackets_recorded_value(
        v in 0.001f64..1e7,
        others in prop::collection::vec(0.001f64..1e7, 0..100),
    ) {
        let mut s = QuantileSketch::new();
        s.record(v);
        for &x in &others { s.record(x); }
        let below = s.rank_below(v);
        let above = s.rank_below(v * (1.0 + 1e-12) + f64::MIN_POSITIVE);
        prop_assert!(above >= below + 1.0 - 1e-9, "below={below} above={above}");
        prop_assert!(s.cdf(v) > 0.0);
        prop_assert!(s.min() <= v && v <= s.max());
    }

    /// Factor ratios: MR/TR scale linearly when the factor scales.
    #[test]
    fn factor_ratios_scale(base in prop::collection::vec(1.0f64..100.0, 10..50), k in 1.0f64..20.0) {
        let factor: Vec<f64> = base.iter().map(|x| x * k).collect();
        let r = FactorRatios::compute(&factor, &base);
        let m = median(&base);
        prop_assert!((r.mr - k * median(&base) / m).abs() < 1e-9);
        prop_assert!(r.tr >= r.mr - 1e-9, "p99 >= median implies TR >= MR");
    }

    /// Bootstrap CIs bracket their point estimate.
    #[test]
    fn bootstrap_brackets_estimate(xs in prop::collection::vec(0.0f64..1000.0, 5..80), seed in any::<u64>()) {
        let ci = bootstrap_ci(&xs, median, 60, 0.1, seed);
        prop_assert!(ci.lo <= ci.estimate + 1e-9);
        prop_assert!(ci.estimate <= ci.hi + 1e-9);
        prop_assert!(ci.contains(ci.estimate));
    }
}
