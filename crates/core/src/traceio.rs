//! Trace export: serialising captured spans to JSONL and CSV.
//!
//! Spans come out of the simulator in deterministic emission order, so
//! both formats are byte-stable for a fixed seed — [`digest64`] over the
//! exported text is the cheap way to assert that in tests (and to compare
//! runs without storing full golden files).
//!
//! A JSONL export carries one span object per line, in the simulator's
//! emission order:
//!
//! ```text
//! {"span_id":2,"parent":1,"request":0,"component":"propagation","start":0,"end":10000000}
//! {"span_id":3,"parent":1,"request":0,"component":"frontend","start":10000000,"end":14000000}
//! {"span_id":1,"parent":null,"request":0,"component":"request","start":0,"end":52000000}
//! ```
//!
//! `start`/`end` are nanoseconds of simulated time ([`SimTime`]'s wire
//! format); root spans appear when their request completes, hence after
//! their children.

use simkit::trace::SpanRecord;

/// Renders `spans` as JSON Lines, one span object per line.
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str(&serde_json::to_string(span).expect("span serialises"));
        out.push('\n');
    }
    out
}

/// Renders `spans` as CSV with a header row. `parent` is empty for trace
/// roots; `duration_ms` is derived for spreadsheet convenience.
pub fn to_csv(spans: &[SpanRecord]) -> String {
    let mut out = String::from("span_id,parent,request,component,start_ns,end_ns,duration_ms\n");
    for span in spans {
        let parent = span.parent.map_or(String::new(), |p| p.to_string());
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            span.span_id,
            parent,
            span.request,
            span.component,
            span.start.as_nanos(),
            span.end.as_nanos(),
            span.duration_ms(),
        ));
    }
    out
}

/// FNV-1a hash of `text`: a stable 64-bit digest for comparing exports
/// across runs without storing them.
pub fn digest64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::time::SimTime;

    fn spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                span_id: 1,
                parent: None,
                request: 0,
                component: "request",
                start: SimTime::ZERO,
                end: SimTime::from_millis(5.0),
            },
            SpanRecord {
                span_id: 2,
                parent: Some(1),
                request: 0,
                component: "execution",
                start: SimTime::from_millis(1.0),
                end: SimTime::from_millis(3.5),
            },
        ]
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = to_jsonl(&spans());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"span_id":1,"parent":null,"request":0,"component":"request","start":0,"end":5000000}"#
        );
        assert_eq!(
            lines[1],
            r#"{"span_id":2,"parent":1,"request":0,"component":"execution","start":1000000,"end":3500000}"#
        );
    }

    #[test]
    fn csv_has_header_and_derived_duration() {
        let text = to_csv(&spans());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "span_id,parent,request,component,start_ns,end_ns,duration_ms");
        assert_eq!(lines[1], "1,,0,request,0,5000000,5");
        assert_eq!(lines[2], "2,1,0,execution,1000000,3500000,2.5");
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let text = to_jsonl(&spans());
        assert_eq!(digest64(&text), digest64(&text));
        assert_ne!(digest64(&text), digest64(&text[1..]));
        assert_eq!(digest64(""), 0xcbf2_9ce4_8422_2325);
    }
}
