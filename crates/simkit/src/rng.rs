//! Deterministic pseudo-random number generation.
//!
//! The simulator requires bit-stable randomness across platforms, compiler
//! versions and dependency upgrades, so this module implements its own small
//! generator rather than depending on `rand`: [`Rng`] is
//! [xoshiro256++](https://prng.di.unimi.it/) seeded through SplitMix64, the
//! combination recommended by the xoshiro authors.
//!
//! Independent *streams* can be forked from a parent generator with
//! [`Rng::fork`], which hashes a label into the child seed. Forked streams
//! are used to give each simulated component (storage, scheduler, network…)
//! its own decorrelated sequence so that adding draws in one component does
//! not perturb another — essential for comparing experiments.

/// SplitMix64 step; used for seeding and label hashing.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use simkit::rng::Rng;
/// let mut rng = Rng::seed_from(7);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// // Same seed, same sequence:
/// assert_eq!(Rng::seed_from(7).next_u64(), Rng::seed_from(7).next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        // xoshiro must not be seeded with all zeros; splitmix64 of any seed
        // cannot produce four zero words, but guard anyway.
        if s == [0, 0, 0, 0] {
            Rng { s: [1, 2, 3, 4] }
        } else {
            Rng { s }
        }
    }

    /// Forks an independent child stream identified by `label`.
    ///
    /// The child's seed mixes the parent's current state with a hash of the
    /// label, so distinct labels produce decorrelated streams and the same
    /// (parent seed, label) pair always produces the same child. Forking
    /// does not advance the parent.
    pub fn fork(&self, label: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mixed = self.s[0] ^ self.s[2] ^ h;
        Rng::seed_from(mixed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)`.
    ///
    /// Useful where a log of the variate is taken (never returns 0).
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let x = self.next_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        lo + self.below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be decorrelated");
    }

    #[test]
    fn fork_is_stable_and_label_sensitive() {
        let parent = Rng::seed_from(9);
        let mut c1 = parent.fork("storage");
        let mut c2 = parent.fork("storage");
        let mut c3 = parent.fork("network");
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = Rng::seed_from(5);
        let mut b = Rng::seed_from(5);
        let _ = b.fork("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::seed_from(42);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from(7);
        let mut counts = [0u32; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.below(5) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.02, "bucket fraction {frac}");
        }
    }

    #[test]
    fn range_u64_inclusive() {
        let mut rng = Rng::seed_from(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.range_u64(2, 4);
            assert!((2..=4).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 4;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng::seed_from(11);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::seed_from(1);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input in order");
    }

    #[test]
    fn choose_uniformity() {
        let mut rng = Rng::seed_from(2);
        let items = [10, 20, 30];
        let mut c = [0u32; 3];
        for _ in 0..30_000 {
            match rng.choose(&items) {
                10 => c[0] += 1,
                20 => c[1] += 1,
                _ => c[2] += 1,
            }
        }
        for &x in &c {
            assert!((x as f64 / 30_000.0 - 1.0 / 3.0).abs() < 0.02);
        }
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }
}
