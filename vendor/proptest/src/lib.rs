//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, [`Strategy`] with ranges / tuples / [`Just`] /
//! `prop_map` / [`prop_oneof!`], `prop::collection::vec`, `prop::option::of`,
//! `any::<T>()`, and a tiny `[class]{m,n}` regex string strategy.
//!
//! Cases are generated from a seed derived from the test name, so every run
//! (and every thread count) sees the same inputs. There is no shrinking: a
//! failing case panics with its index so it can be replayed by rerunning.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---- deterministic RNG ----------------------------------------------------

/// SplitMix64 generator; plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for tests.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- config / runner ------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment
    /// variable (same knob as upstream proptest; CI pins it).
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!` / `prop_assert_eq!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one property: fresh deterministic RNG per case, panic on failure.
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name.as_bytes());
    for i in 0..cfg.cases {
        let mut rng =
            TestRng::new(base.wrapping_add(0x51_7cc1_b727_2202u64.wrapping_mul(i as u64 + 1)));
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed on case {i}: {e}");
        }
    }
}

// ---- Strategy -------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (backs [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span + 1) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Scale a closed-unit draw so both endpoints are reachable.
        let u = rng.below((1 << 53) + 1) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Minimal regex string strategy: a sequence of `[class]` or literal chars,
/// each optionally followed by `{m,n}` / `{n}`. Covers patterns like
/// `"[a-z]{1,12}"`; anything fancier panics loudly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|off| i + off)
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {self:?}"));
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            for c in lo..=hi {
                                set.push(char::from_u32(c).unwrap());
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' | '.' => {
                    panic!("unsupported regex construct `{}` in pattern {self:?}", chars[i])
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|off| i + off)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {self:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repeat count"),
                        n.trim().parse::<usize>().expect("bad repeat count"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let reps = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..reps {
                let pick = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[pick]);
            }
        }
        out
    }
}

// ---- any / arbitrary ------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- collection / option modules ------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some ~75% of the time, like proptest's weighted default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// `prop::` path alias used by `use proptest::prelude::*` call sites.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

// ---- macros ---------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg = $cfg;
            $crate::run_cases(&cfg, stringify!($name), |prop_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)+
                (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3u64..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn regex_strategy_shape() {
        let mut rng = crate::TestRng::new(11);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let gen = || {
            let mut rng = crate::TestRng::new(42);
            let strat = prop_oneof![Just(1u64), 5u64..10, any::<u64>().prop_map(|x| x % 3)];
            (0..32).map(|_| strat.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn macro_smoke(xs in prop::collection::vec(0u64..100, 1..20), opt in prop::option::of(1u32..5)) {
            prop_assert!(xs.len() < 20);
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 100).count(), 0);
            if let Some(v) = opt {
                prop_assert!((1..5).contains(&v), "v={v}");
            }
        }
    }
}
