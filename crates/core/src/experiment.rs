//! One-call experiments: provider + static config + runtime config → stats.
//!
//! [`Experiment`] wraps the deploy→drive→measure pipeline behind a builder
//! so that benchmark code (and downstream users) can express a paper
//! experiment in a few lines.

use faas_sim::cloud::{CloudSim, DagDeployment, DeployError};
use faas_sim::config::ProviderConfig;
use faas_sim::dag::{DagPlan, DagSpec};
use simkit::engine::QueueKind;
use simkit::metrics::Metrics;
use simkit::trace::SpanRecord;
use stats::Summary;

use crate::client::{run_workload_spec, run_workload_with, ClientError, MeasureSpec, RunResult};
use crate::config::{RuntimeConfig, StaticConfig};
use crate::deployer::{deploy, Deployment, Endpoint};

/// Errors from running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// Deployment failed.
    Deploy(faas_sim::cloud::DeployError),
    /// The client run failed.
    Client(ClientError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Deploy(e) => write!(f, "deploy: {e}"),
            ExperimentError::Client(e) => write!(f, "client: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<faas_sim::cloud::DeployError> for ExperimentError {
    fn from(e: faas_sim::cloud::DeployError) -> Self {
        ExperimentError::Deploy(e)
    }
}

impl From<ClientError> for ExperimentError {
    fn from(e: ClientError) -> Self {
        ExperimentError::Client(e)
    }
}

/// A fully specified experiment.
///
/// # Examples
///
/// ```
/// use stellar_core::config::{IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
/// use stellar_core::experiment::Experiment;
/// use faas_sim::testutil::test_provider;
///
/// let outcome = Experiment::new(test_provider())
///     .functions(StaticConfig { functions: vec![StaticFunction::python_zip("probe")] })
///     .workload(RuntimeConfig::single(IatSpec::short(), 100))
///     .seed(7)
///     .run()
///     .unwrap();
/// assert_eq!(outcome.result.completions.len(), 100);
/// assert!(outcome.summary.median > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    provider: ProviderConfig,
    static_cfg: StaticConfig,
    runtime_cfg: RuntimeConfig,
    seed: u64,
    trace_capacity: Option<usize>,
    measure: MeasureSpec,
    queue: QueueKind,
    profile_events: bool,
    dag: Option<DagSpec>,
}

/// Latency breakdown of one workflow stage (DAG node), over every
/// invocation of the stage (warm-up rounds included — stages run once
/// per workflow traversal, not once per measured sample).
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Node name from the [`DagSpec`].
    pub name: String,
    /// Stage invocations observed.
    pub count: u64,
    /// Median stage latency, ms. A stage's latency excludes its
    /// downstream round trip (`total − chain`), so stages don't
    /// double-count their subtrees.
    pub median_ms: f64,
    /// 99th-percentile stage latency, ms.
    pub p99_ms: f64,
}

/// Straggler accounting of one join stage.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinReport {
    /// Join node name from the [`DagSpec`].
    pub stage: String,
    /// Barrier firings.
    pub fired: u64,
    /// Branches that arrived after their barrier fired (k-of-n joins).
    pub stragglers: u64,
    /// p99 of individual branch latencies, ms.
    pub branch_p99_ms: f64,
    /// p99 of barrier-fire latencies (max over counted branches), ms.
    pub join_p99_ms: f64,
    /// `join_p99_ms / branch_p99_ms`: tail-at-scale amplification.
    pub amplification: f64,
}

/// Per-stage and join statistics of a workflow run (see
/// [`Experiment::app`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DagRunStats {
    /// Workflow name.
    pub app: String,
    /// One entry per stage, in plan-node order.
    pub stages: Vec<StageStats>,
    /// One entry per join stage, in plan-node order.
    pub joins: Vec<JoinReport>,
    /// Worst join amplification across the workflow (`0` without joins):
    /// the headline straggler metric.
    pub straggler_amplification: f64,
}

/// What an experiment produced.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Raw client measurements.
    pub result: RunResult,
    /// Summary statistics over the measured end-to-end latencies, ms.
    pub summary: Summary,
    /// Summary over transfer times (chains only), ms.
    pub transfer_summary: Option<Summary>,
    /// Spans captured by the trace ring; empty unless
    /// [`Experiment::trace`] enabled tracing.
    pub spans: Vec<SpanRecord>,
    /// Lifecycle counters maintained by the cloud (always on).
    pub metrics: Metrics,
    /// Per-stage breakdown and straggler accounting; `None` unless the
    /// experiment ran an application workflow ([`Experiment::app`]).
    pub dag: Option<DagRunStats>,
}

impl Outcome {
    /// Measured end-to-end latencies, ms.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.result.latencies_ms()
    }
}

impl Experiment {
    /// Starts building an experiment against `provider` with defaults:
    /// one Python ZIP function, 100 single invocations at the short IAT,
    /// seed 0.
    pub fn new(provider: ProviderConfig) -> Experiment {
        Experiment {
            provider,
            static_cfg: StaticConfig {
                functions: vec![crate::config::StaticFunction::python_zip("fn")],
            },
            runtime_cfg: RuntimeConfig::single(crate::config::IatSpec::short(), 100),
            seed: 0,
            trace_capacity: None,
            measure: MeasureSpec::default(),
            queue: QueueKind::default(),
            profile_events: false,
            dag: None,
        }
    }

    /// Runs an application workflow instead of the static function set:
    /// `spec` is compiled, deployed as one function per node, and the
    /// workload drives the workflow's root. Per-stage latency and
    /// straggler statistics land in [`Outcome::dag`]. Mutually exclusive
    /// with a legacy chain configuration; node execution-time models
    /// override the runtime `exec_ms`.
    pub fn app(mut self, spec: DagSpec) -> Experiment {
        self.dag = Some(spec);
        self
    }

    /// Sets the static (deployer) configuration.
    pub fn functions(mut self, cfg: StaticConfig) -> Experiment {
        self.static_cfg = cfg;
        self
    }

    /// Sets the runtime (client) configuration.
    pub fn workload(mut self, cfg: RuntimeConfig) -> Experiment {
        self.runtime_cfg = cfg;
        self
    }

    /// Sets the deterministic seed (both cloud and client streams).
    pub fn seed(mut self, seed: u64) -> Experiment {
        self.seed = seed;
        self
    }

    /// Enables invocation tracing into a ring of `capacity` spans; the
    /// captured spans land in [`Outcome::spans`]. Tracing draws no
    /// randomness, so results are identical with or without it.
    pub fn trace(mut self, capacity: usize) -> Experiment {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Sets how the run is measured (quantile machinery, sample
    /// retention). [`MeasureSpec::sketch`] makes million-invocation runs
    /// stream through O(sketch)-sized aggregates instead of holding every
    /// latency.
    pub fn measure(mut self, measure: MeasureSpec) -> Experiment {
        self.measure = measure;
        self
    }

    /// Selects the event-queue backend (default: adaptive — binary heap
    /// promoting to the calendar queue past a pending-set threshold).
    /// Purely a performance knob — results are bit-identical across
    /// backends.
    pub fn queue(mut self, queue: QueueKind) -> Experiment {
        self.queue = queue;
        self
    }

    /// Enables per-event cost profiling: every event dispatch is timed
    /// and bucketed by event class, and the totals land in
    /// [`Outcome::metrics`] under the `faas_sim::cloud::metric::PROFILE_*`
    /// names. Profiling observes wall-clock time only, so results stay
    /// bit-identical to an unprofiled run.
    pub fn profile_events(mut self, on: bool) -> Experiment {
        self.profile_events = on;
        self
    }

    /// Deploys, drives the workload and summarises.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] on deploy or client failure.
    pub fn run(&self) -> Result<Outcome, ExperimentError> {
        let mut cloud = CloudSim::with_queue(self.provider.clone(), self.seed, self.queue);
        if let Some(capacity) = self.trace_capacity {
            cloud.enable_tracing(capacity);
        }
        if self.profile_events {
            cloud.enable_event_profiling();
        }
        let dag_plan = match &self.dag {
            Some(spec) => {
                if self.runtime_cfg.chain.is_some() {
                    return Err(ExperimentError::Deploy(DeployError::InvalidSpec(
                        "an application workflow and a legacy chain are mutually exclusive"
                            .to_string(),
                    )));
                }
                Some(spec.compile().map_err(DeployError::InvalidSpec)?)
            }
            None => None,
        };
        let (deployment, dag_deployment) = match &dag_plan {
            Some(plan) => {
                self.runtime_cfg.validate().map_err(DeployError::InvalidSpec)?;
                let dep = cloud.deploy_dag(plan)?;
                // Per-stage reporting needs the internal hops; recording
                // draws no randomness, so results are unperturbed.
                cloud.record_internal_completions(true);
                let endpoint = Endpoint {
                    url: format!("https://{}.sim/{}", cloud.config().name, plan.name),
                    function: dep.root,
                    name: plan.name.clone(),
                };
                (Deployment { endpoints: vec![endpoint] }, Some(dep))
            }
            None => (deploy(&mut cloud, &self.static_cfg, &self.runtime_cfg)?, None),
        };
        // Install the fault schedule (if any) before submitting work.
        // Inert specs compile to inert plans, which the cloud skips —
        // so a `faults: none` run stays byte-identical to a faults-off
        // one.
        if let Some(spec) = &self.runtime_cfg.faults {
            cloud.install_faults(spec.build());
        }
        let mut result = match &self.runtime_cfg.workload {
            Some(spec) => run_workload_spec(
                &mut cloud,
                &deployment,
                &self.runtime_cfg,
                spec,
                self.seed,
                &self.measure,
            )?,
            // A policy without an explicit workload model runs on the
            // spec driver too: the legacy IAT is lifted into an
            // equivalent open-loop arrival process.
            None if self.runtime_cfg.policy.is_some() => {
                let spec = workload_from_iat(&self.runtime_cfg.iat);
                run_workload_spec(
                    &mut cloud,
                    &deployment,
                    &self.runtime_cfg,
                    &spec,
                    self.seed,
                    &self.measure,
                )?
            }
            None => run_workload_with(
                &mut cloud,
                &deployment,
                &self.runtime_cfg,
                self.seed,
                &self.measure,
            )?,
        };
        // Both modes summarise through the same aggregate: in exact mode
        // the aggregate's buffer holds every sample and `summary()`
        // delegates to the sorted exact path, so the output is
        // bit-identical with the legacy sort-the-samples code.
        // A run whose every request failed (a fault schedule can inject
        // errors at probability 1) has no latency samples; that is a
        // valid outcome, not a panic.
        let summary = if result.latency_agg.is_empty() {
            stats::summary::Summary::empty()
        } else {
            result.latency_agg.summary()
        };
        let transfer_summary =
            if result.transfer_agg.is_empty() { None } else { Some(result.transfer_agg.summary()) };
        if cloud.faults_installed() {
            result.faults = Some(cloud.fault_stats());
        }
        let dag = match (&dag_plan, &dag_deployment) {
            (Some(plan), Some(dep)) => Some(dag_run_stats(&mut cloud, plan, dep, &result)),
            _ => None,
        };
        let spans = cloud.drain_spans();
        // Fold end-of-run slab and event-queue counters into the metrics
        // registry so reports can audit memory behaviour; likewise the
        // per-event cost profile when profiling was on.
        cloud.record_queue_metrics();
        cloud.record_profile_metrics();
        let metrics = cloud.metrics().clone();
        Ok(Outcome { result, summary, transfer_summary, spans, metrics, dag })
    }
}

/// Builds the per-stage breakdown and straggler report of a workflow run.
///
/// Stage latency is `total − chain` per completion — a stage's own
/// contribution (infrastructure, execution, response) excluding the
/// downstream round trip it waited on, so stages don't double-count their
/// subtrees. Root-stage samples come from the client's completions
/// (warm-up included), the other stages from the recorded internal
/// completions.
fn dag_run_stats(
    cloud: &mut CloudSim,
    plan: &DagPlan,
    dep: &DagDeployment,
    result: &RunResult,
) -> DagRunStats {
    use std::collections::HashMap;
    // fid -> plan node index.
    let node_of: HashMap<usize, usize> =
        dep.functions.iter().enumerate().map(|(node, fid)| (fid.index(), node)).collect();
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); plan.nodes.len()];
    let internal = cloud.drain_internal_completions();
    for c in
        result.completions.iter().chain(result.warmup_completions.iter()).chain(internal.iter())
    {
        if let Some(&node) = node_of.get(&c.function.index()) {
            samples[node].push(c.breakdown.total_ms() - c.breakdown.chain_ms);
        }
    }
    let stages = plan
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let s = &mut samples[i];
            s.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            StageStats {
                name: node.name.clone(),
                count: s.len() as u64,
                median_ms: quantile_sorted(s, 0.5),
                p99_ms: quantile_sorted(s, 0.99),
            }
        })
        .collect();
    let mut joins: Vec<JoinReport> = cloud
        .dag_join_stats()
        .into_iter()
        .filter_map(|j| {
            node_of.get(&j.function.index()).map(|&node| JoinReport {
                stage: plan.nodes[node].name.clone(),
                fired: j.fired,
                stragglers: j.stragglers,
                branch_p99_ms: j.branch_p99_ms,
                join_p99_ms: j.join_p99_ms,
                amplification: j.amplification,
            })
        })
        .collect();
    joins.sort_by_key(|j| plan.nodes.iter().position(|n| n.name == j.stage));
    let straggler_amplification = joins.iter().map(|j| j.amplification).fold(0.0, f64::max);
    DagRunStats { app: plan.name.clone(), stages, joins, straggler_amplification }
}

/// Quantile of an already-sorted sample set (nearest-rank); 0 when empty.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

/// Lifts a legacy [`crate::config::IatSpec`] into the equivalent
/// open-loop workload model, so policy runs always go through the
/// spec driver.
fn workload_from_iat(iat: &crate::config::IatSpec) -> workload::WorkloadSpec {
    use crate::config::IatSpec;
    use workload::spec::{ArrivalSpec, ModeSpec};
    let arrival = match *iat {
        IatSpec::Fixed { ms } => ArrivalSpec::Fixed { ms },
        IatSpec::Exponential { mean_ms } => ArrivalSpec::Exponential { mean_ms },
        IatSpec::Uniform { lo_ms, hi_ms } => ArrivalSpec::Uniform { lo_ms, hi_ms },
    };
    workload::WorkloadSpec { arrival, mode: ModeSpec::Open }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChainConfig, IatSpec, StaticFunction};
    use faas_sim::testutil::test_provider;
    use faas_sim::types::TransferMode;

    #[test]
    fn default_experiment_runs() {
        let outcome = Experiment::new(test_provider()).seed(1).run().unwrap();
        assert_eq!(outcome.summary.count, 100);
        assert!(outcome.transfer_summary.is_none());
    }

    #[test]
    fn chain_experiment_summarises_transfers() {
        let mut runtime = RuntimeConfig::single(IatSpec::Fixed { ms: 1000.0 }, 20);
        runtime.warmup_rounds = 2;
        runtime.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Inline, payload_bytes: 1_000_000 });
        let outcome = Experiment::new(test_provider())
            .functions(StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] })
            .workload(runtime)
            .seed(2)
            .run()
            .unwrap();
        let ts = outcome.transfer_summary.expect("transfers summarised");
        assert_eq!(ts.count, 20);
        // 1 MB at 100 MB/s inline = 10ms wire + warm overhead.
        assert!(ts.median > 10.0 && ts.median < 60.0, "median {}", ts.median);
    }

    #[test]
    fn tracing_captures_spans_without_changing_results() {
        let base = Experiment::new(test_provider()).seed(5);
        let plain = base.clone().run().unwrap();
        let traced = base.trace(100_000).run().unwrap();
        assert_eq!(plain.latencies_ms(), traced.latencies_ms());
        assert!(plain.spans.is_empty(), "tracing is off by default");
        assert!(!traced.spans.is_empty());
        let total =
            (traced.result.completions.len() + traced.result.warmup_completions.len()) as u64;
        assert_eq!(traced.metrics.counter(faas_sim::cloud::metric::REQUESTS_COMPLETED), total);
    }

    #[test]
    fn event_profiling_fills_cost_metrics_without_changing_results() {
        use faas_sim::cloud::metric;
        let base = Experiment::new(test_provider()).seed(6);
        let plain = base.clone().run().unwrap();
        let profiled = base.profile_events(true).run().unwrap();
        assert_eq!(plain.latencies_ms(), profiled.latencies_ms(), "profiling must not perturb");
        assert_eq!(plain.metrics.counter(metric::PROFILE_LOOP_NS), 0, "off by default");
        assert!(profiled.metrics.counter(metric::PROFILE_LOOP_NS) > 0);
        let events: u64 = metric::PROFILE_COUNT.iter().map(|n| profiled.metrics.counter(n)).sum();
        assert!(events >= 100, "every dispatched event is counted, got {events}");
        // Telescoping timestamps: the per-class cost sum cannot exceed the
        // measured loop wall time.
        let ns: u64 = metric::PROFILE_NS.iter().map(|n| profiled.metrics.counter(n)).sum();
        assert!(ns <= profiled.metrics.counter(metric::PROFILE_LOOP_NS));
    }

    #[test]
    fn seed_controls_reproducibility() {
        let latencies =
            |seed| Experiment::new(test_provider()).seed(seed).run().unwrap().latencies_ms();
        assert_eq!(latencies(3), latencies(3));
    }

    #[test]
    fn workload_spec_routes_through_spec_driver() {
        let mut runtime = RuntimeConfig::single(IatSpec::short(), 60);
        runtime.warmup_rounds = 5;
        runtime = runtime.with_workload(workload::WorkloadSpec::preset("mmpp-burst").unwrap());
        let outcome = Experiment::new(test_provider()).workload(runtime).seed(4).run().unwrap();
        assert_eq!(outcome.summary.count, 60);
        let offered = outcome.result.offered.expect("spec runs report offered load");
        assert_eq!(offered.arrivals, 65);
        assert!(offered.iat_cv > 1.0, "MMPP is overdispersed, cv {}", offered.iat_cv);
        // Slab counters were folded into the metrics registry.
        assert!(outcome.metrics.counter(faas_sim::cloud::metric::REQUEST_SLOTS_ALLOCATED) > 0);
        assert!(
            outcome.metrics.counter(faas_sim::cloud::metric::REQUEST_SLOTS_HIGH_WATER) <= 65,
            "high water bounded by total requests"
        );
    }

    #[test]
    fn policy_without_workload_lifts_the_iat_into_a_spec_run() {
        let mut runtime = RuntimeConfig::single(IatSpec::Exponential { mean_ms: 400.0 }, 40)
            .with_policy(policy::PolicySpec::preset("hedge-200ms").unwrap());
        runtime.warmup_rounds = 2;
        runtime.exec_ms = 300.0;
        let outcome = Experiment::new(test_provider()).workload(runtime).seed(8).run().unwrap();
        assert_eq!(outcome.summary.count, 40);
        assert!(outcome.result.offered.is_some(), "lifted IAT runs on the spec driver");
        let stats = outcome.result.policy.expect("policy stats surface through Outcome");
        assert_eq!(stats.extra_launches, 42, "300 ms execution hedges every request");
    }

    #[test]
    fn deploy_errors_propagate() {
        let mut runtime = RuntimeConfig::single(IatSpec::short(), 10);
        runtime.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Inline, payload_bytes: 100_000_000 });
        let err = Experiment::new(test_provider()).workload(runtime).run().unwrap_err();
        assert!(matches!(err, ExperimentError::Deploy(_)));
    }

    fn fan_two() -> faas_sim::dag::DagSpec {
        use faas_sim::dag::{DagNodeSpec, DagSpec};
        use simkit::dist::Dist;
        DagSpec::new("fan2")
            .node(DagNodeSpec::new("start").exec_ms(Dist::constant(5.0)))
            .node(DagNodeSpec::new("w0").exec_ms(Dist::constant(20.0)))
            .node(DagNodeSpec::new("w1").exec_ms(Dist::constant(40.0)))
            .node(DagNodeSpec::new("join").exec_ms(Dist::constant(5.0)))
            .edge("start", "w0", TransferMode::Inline, Dist::constant(1024.0))
            .edge("start", "w1", TransferMode::Inline, Dist::constant(1024.0))
            .edge("w0", "join", TransferMode::Inline, Dist::constant(512.0))
            .edge("w1", "join", TransferMode::Inline, Dist::constant(512.0))
    }

    #[test]
    fn app_experiment_reports_stage_breakdown() {
        let mut runtime = RuntimeConfig::single(IatSpec::Fixed { ms: 500.0 }, 20);
        runtime.warmup_rounds = 2;
        let outcome = Experiment::new(test_provider())
            .app(fan_two())
            .workload(runtime)
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(outcome.summary.count, 20);
        let dag = outcome.dag.expect("app runs report per-stage statistics");
        assert_eq!(dag.app, "fan2");
        assert_eq!(dag.stages.len(), 4);
        for stage in &dag.stages {
            assert_eq!(stage.count, 22, "{}: warm-up rounds traverse the DAG too", stage.name);
            assert!(stage.median_ms > 0.0);
            assert!(stage.p99_ms >= stage.median_ms);
        }
        assert_eq!(dag.joins.len(), 1);
        assert_eq!(dag.joins[0].stage, "join");
        assert_eq!(dag.joins[0].fired, 22);
        assert_eq!(dag.joins[0].stragglers, 0, "all-of-n joins have no stragglers");
        assert!(
            dag.straggler_amplification >= 1.0,
            "an all-of-n join waits on its slowest branch: {}",
            dag.straggler_amplification
        );
    }

    #[test]
    fn app_runs_are_reproducible_and_queue_independent() {
        use simkit::engine::QueueKind;
        let run = |queue| {
            Experiment::new(test_provider())
                .app(fan_two())
                .workload(RuntimeConfig::single(IatSpec::short(), 30))
                .seed(9)
                .queue(queue)
                .run()
                .unwrap()
                .latencies_ms()
        };
        assert_eq!(run(QueueKind::BinaryHeap), run(QueueKind::BinaryHeap));
        assert_eq!(run(QueueKind::BinaryHeap), run(QueueKind::Calendar));
    }

    #[test]
    fn app_and_chain_are_mutually_exclusive() {
        let mut runtime = RuntimeConfig::single(IatSpec::short(), 10);
        runtime.chain =
            Some(ChainConfig { length: 2, mode: TransferMode::Inline, payload_bytes: 1_000 });
        let err =
            Experiment::new(test_provider()).app(fan_two()).workload(runtime).run().unwrap_err();
        assert!(matches!(err, ExperimentError::Deploy(_)), "got {err}");
        assert!(err.to_string().contains("mutually exclusive"));
    }

    #[test]
    fn invalid_app_spec_is_a_deploy_error() {
        use faas_sim::dag::{DagNodeSpec, DagSpec};
        use simkit::dist::Dist;
        let cyclic = DagSpec::new("bad")
            .node(DagNodeSpec::new("root"))
            .node(DagNodeSpec::new("a"))
            .node(DagNodeSpec::new("b"))
            .edge("root", "a", TransferMode::Inline, Dist::constant(1024.0))
            .edge("a", "b", TransferMode::Inline, Dist::constant(1024.0))
            .edge("b", "a", TransferMode::Inline, Dist::constant(1024.0));
        let err = Experiment::new(test_provider()).app(cyclic).run().unwrap_err();
        assert!(err.to_string().contains("cycle"), "got {err}");
    }
}
