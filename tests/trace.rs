//! Trace-verified invocation lifecycle tests.
//!
//! Three layers of assurance over the tracing subsystem:
//!
//! 1. **Golden trace** — a fixed-seed warm-invocation run (the Fig 3
//!    measurement shape) exports JSONL that is byte-identical across
//!    repeated runs and across thread counts.
//! 2. **Coverage** — chained workloads exercise every one of the 12
//!    breakdown components as spans, tagged exactly like
//!    `stellar_core::Component`.
//! 3. **Properties** (proptest over random workloads) — spans are
//!    well-nested and non-negative, a request's component spans tile its
//!    end-to-end latency *exactly* in `SimTime` arithmetic, and
//!    per-component span sums agree with the `Breakdown` the client
//!    measures.

use std::collections::{HashMap, HashSet};

use faas_sim::cloud::span_tag;
use faas_sim::request::Completion;
use faas_sim::types::TransferMode;
use providers::profiles::{aws_like, azure_like, google_like};
use simkit::time::SimTime;
use simkit::trace::SpanRecord;
use stellar_core::breakdown::Component;
use stellar_core::config::{ChainConfig, IatSpec, RuntimeConfig, StaticConfig, StaticFunction};
use stellar_core::experiment::{Experiment, Outcome};
use stellar_core::traceio;

/// Plenty of headroom: no test here may drop spans.
const RING: usize = 1 << 20;

fn warm_experiment(samples: u32, seed: u64) -> Experiment {
    Experiment::new(aws_like())
        .functions(StaticConfig { functions: vec![StaticFunction::python_zip("warm")] })
        .workload(RuntimeConfig::single(IatSpec::Fixed { ms: 3_000.0 }, samples))
        .seed(seed)
        .trace(RING)
}

fn chain_experiment(mode: TransferMode, seed: u64) -> Experiment {
    let mut runtime = RuntimeConfig::single(IatSpec::Fixed { ms: 3_000.0 }, 15);
    runtime.warmup_rounds = 1;
    runtime.chain = Some(ChainConfig { length: 2, mode, payload_bytes: 500_000 });
    Experiment::new(aws_like())
        .functions(StaticConfig { functions: vec![StaticFunction::go_zip("xfer")] })
        .workload(runtime)
        .seed(seed)
        .trace(RING)
}

#[test]
fn golden_trace_digest_is_stable_across_runs_and_threads() {
    let export = || {
        let outcome = warm_experiment(100, 20210901).run().unwrap();
        traceio::to_jsonl(&outcome.spans)
    };
    let serial_a = export();
    let serial_b = export();
    assert_eq!(serial_a, serial_b, "repeated runs must export identical JSONL");
    assert!(!serial_a.is_empty());

    // The same run executed concurrently — under contention, on any
    // number of worker threads — must still produce the same bytes.
    for threads in [2usize, 4] {
        let digests = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..threads).map(|_| scope.spawn(|_| traceio::digest64(&export()))).collect();
            handles.into_iter().map(|h| h.join().expect("worker thread")).collect::<Vec<u64>>()
        })
        .expect("scope");
        for digest in digests {
            assert_eq!(
                digest,
                traceio::digest64(&serial_a),
                "digest must not depend on thread count ({threads} threads)"
            );
        }
    }
}

#[test]
fn chained_workloads_cover_all_twelve_components() {
    let mut seen: HashSet<&str> = HashSet::new();
    for mode in [TransferMode::Inline, TransferMode::Storage] {
        let outcome = chain_experiment(mode, 7).run().unwrap();
        seen.extend(outcome.spans.iter().map(|s| s.component));
    }
    for component in Component::ALL {
        assert!(
            seen.contains(component.code()),
            "no span ever tagged {:?} ({})",
            component,
            component.code()
        );
    }
    assert!(seen.contains(span_tag::REQUEST), "root spans missing");
    // Every tag in the trace is either a component or the root marker.
    for tag in &seen {
        assert!(
            *tag == span_tag::REQUEST || Component::from_code(tag).is_some(),
            "span tag {tag} maps to no breakdown component"
        );
    }
}

#[test]
fn tracing_does_not_perturb_results() {
    let traced = warm_experiment(60, 99).run().unwrap();
    let untraced = Experiment::new(aws_like())
        .functions(StaticConfig { functions: vec![StaticFunction::python_zip("warm")] })
        .workload(RuntimeConfig::single(IatSpec::Fixed { ms: 3_000.0 }, 60))
        .seed(99)
        .run()
        .unwrap();
    assert_eq!(traced.latencies_ms(), untraced.latencies_ms());
    assert!(untraced.spans.is_empty());
}

// ---- structural verification ---------------------------------------------

/// Checks every structural span property over one traced outcome; returns
/// the number of completions verified.
fn verify_trace(outcome: &Outcome) -> usize {
    let spans = &outcome.spans;
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "span ids must be unique");

    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for span in spans {
        assert!(span.end >= span.start, "negative span: {span}");
        if let Some(parent_id) = span.parent {
            let parent = by_id
                .get(&parent_id)
                .unwrap_or_else(|| panic!("span {span} has unknown parent {parent_id}"));
            assert!(
                parent.start <= span.start && span.end <= parent.end,
                "span {span} escapes its parent {parent}"
            );
            children.entry(parent_id).or_default().push(span);
        }
    }

    let roots: HashMap<u64, &SpanRecord> =
        spans.iter().filter(|s| s.component == span_tag::REQUEST).map(|s| (s.request, s)).collect();

    let completions: Vec<&Completion> =
        outcome.result.warmup_completions.iter().chain(outcome.result.completions.iter()).collect();
    for completion in &completions {
        let request = completion.id.packed();
        let root =
            roots.get(&request).unwrap_or_else(|| panic!("request {request} has no root span"));
        assert_eq!(root.parent, None, "external roots must be trace roots");
        assert_eq!(root.start, completion.issued_at);
        assert_eq!(root.end, completion.completed_at);

        // The direct children tile the request's lifetime: their durations
        // sum to the end-to-end latency EXACTLY in SimTime arithmetic
        // (segment boundaries telescope; see cloud.rs emission sites).
        let kids = &children[&root.span_id];
        let tiled: SimTime = kids.iter().map(|s| s.duration()).sum();
        assert_eq!(
            tiled,
            root.duration(),
            "request {request}: component spans must tile e2e exactly"
        );

        // Per component, span durations agree with the Breakdown the
        // client measures — up to SimTime's nanosecond quantisation.
        for component in Component::ALL {
            let from_spans: f64 = kids
                .iter()
                .filter(|s| s.component == component.code())
                .map(|s| s.duration_ms())
                .sum();
            let from_breakdown = component.extract(completion);
            assert!(
                (from_spans - from_breakdown).abs() < 1e-4,
                "request {request} {}: spans {from_spans} ms vs breakdown \
                 {from_breakdown} ms",
                component.code()
            );
        }
    }
    completions.len()
}

#[test]
fn warm_trace_satisfies_structure() {
    let outcome = warm_experiment(50, 11).run().unwrap();
    assert!(verify_trace(&outcome) >= 50);
}

#[test]
fn chained_traces_satisfy_structure() {
    for (mode, seed) in [(TransferMode::Inline, 1), (TransferMode::Storage, 2)] {
        let outcome = chain_experiment(mode, seed).run().unwrap();
        assert!(verify_trace(&outcome) >= 15);
    }
}

// ---- property-based verification -----------------------------------------

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn chain_strategy() -> impl Strategy<Value = ChainConfig> {
        (0u8..2, 1_000u64..2_000_000).prop_map(|(mode, payload_bytes)| ChainConfig {
            length: 2,
            mode: if mode == 0 { TransferMode::Inline } else { TransferMode::Storage },
            payload_bytes,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn random_workload_traces_are_well_formed(
            shape in ((1u32..4, 4u32..16), (0.0f64..40.0, prop::option::of(chain_strategy())), 0usize..3),
            seed in any::<u64>(),
        ) {
            let ((burst_size, samples), (exec_ms, chain), provider_idx) = shape;
            let provider = [aws_like, google_like, azure_like][provider_idx]();
            let runtime = RuntimeConfig {
                iat: IatSpec::Fixed { ms: 3_000.0 },
                burst_size,
                samples,
                warmup_rounds: 1,
                exec_ms,
                chain,
                workload: None,
                policy: None,
                faults: None,
            };
            let function = if runtime.chain.is_some() {
                StaticFunction::go_zip("f")
            } else {
                StaticFunction::python_zip("f")
            };
            let outcome = Experiment::new(provider)
                .functions(StaticConfig { functions: vec![function] })
                .workload(runtime)
                .seed(seed)
                .trace(RING)
                .run()
                .unwrap();
            let verified = verify_trace(&outcome);
            prop_assert!(verified as u32 >= samples);
        }
    }
}
