//! Property-based tests of the simulation toolkit.

use proptest::prelude::*;
use simkit::dist::Dist;
use simkit::engine::{Model, QueueKind, Scheduler, Simulation};
use simkit::ratelimit::{SerialServer, TokenBucket};
use simkit::rng::Rng;
use simkit::time::SimTime;

/// Records dispatch order for ordering properties.
struct Recorder {
    seen: Vec<(SimTime, u64)>,
}

impl Model for Recorder {
    type Event = u64;
    fn handle(&mut self, now: SimTime, event: u64, _sched: &mut Scheduler<u64>) {
        self.seen.push((now, event));
    }
}

proptest! {
    /// Events dispatch in non-decreasing time order, with FIFO tie-breaks,
    /// for any schedule.
    #[test]
    fn engine_dispatch_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), i as u64);
        }
        sim.run();
        let seen = &sim.model().seen;
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[1].0 >= w[0].0, "time order violated");
            if w[1].0 == w[0].0 {
                prop_assert!(w[1].1 > w[0].1, "FIFO tie-break violated");
            }
        }
    }

    /// The calendar queue dispatches any schedule in exactly the same
    /// order as the binary heap, including across a run_until horizon and
    /// with mid-run scheduling — the backends are observationally
    /// equivalent.
    #[test]
    fn engine_backends_are_equivalent(
        times in prop::collection::vec(0u64..10_000_000, 1..300),
        late in prop::collection::vec(0u64..10_000_000, 0..50),
        split in 0u64..10_000_000,
    ) {
        let run = |kind: QueueKind| {
            let mut sim = Simulation::with_queue(Recorder { seen: Vec::new() }, kind);
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(t), i as u64);
            }
            sim.run_until(SimTime::from_nanos(split));
            for (i, &t) in late.iter().enumerate() {
                let at = SimTime::from_nanos(split + t);
                sim.schedule_at(at, (times.len() + i) as u64);
            }
            sim.run();
            sim.into_model().seen
        };
        let heap = run(QueueKind::BinaryHeap);
        prop_assert_eq!(&heap, &run(QueueKind::Calendar));
        prop_assert_eq!(&heap, &run(QueueKind::Adaptive));
    }

    /// run_until splits a run without changing what gets processed.
    #[test]
    fn engine_run_until_is_prefix_stable(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        split in 0u64..1_000_000,
    ) {
        let schedule = |sim: &mut Simulation<Recorder>| {
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(t), i as u64);
            }
        };
        let mut whole = Simulation::new(Recorder { seen: Vec::new() });
        schedule(&mut whole);
        whole.run();

        let mut parts = Simulation::new(Recorder { seen: Vec::new() });
        schedule(&mut parts);
        parts.run_until(SimTime::from_nanos(split));
        parts.run();
        prop_assert_eq!(&whole.model().seen, &parts.model().seen);
    }

    /// Samples never go negative, and the empirical median of a shifted
    /// lognormal brackets its analytic median.
    #[test]
    fn dist_samples_nonnegative(seed in any::<u64>(), median in 1.0f64..1000.0, ratio in 1.0f64..20.0) {
        let d = Dist::lognormal_median_p99(median, median * ratio);
        let mut rng = Rng::seed_from(seed);
        let mut values: Vec<f64> = (0..400).map(|_| d.sample(&mut rng)).collect();
        prop_assert!(values.iter().all(|&v| v >= 0.0));
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let emp_median = values[200];
        // 400 samples: generous band around the analytic median.
        prop_assert!(emp_median > median * 0.5 && emp_median < median * 2.0,
            "median {median} vs empirical {emp_median}");
    }

    /// Mixture sampling respects the support of its components.
    #[test]
    fn mixture_support(seed in any::<u64>(), a in 0.1f64..10.0, b in 20.0f64..100.0, p in 0.0f64..1.0) {
        let d = Dist::bimodal(Dist::constant(a), Dist::constant(b), p);
        let mut rng = Rng::seed_from(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x == a || x == b);
        }
    }

    /// Forked RNG streams are independent of fork order and label-stable.
    #[test]
    fn rng_fork_stability(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let parent = Rng::seed_from(seed);
        let mut c1 = parent.fork(&label);
        let mut c2 = parent.fork(&label);
        prop_assert_eq!(c1.next_u64(), c2.next_u64());
    }

    /// below(n) stays in range for any n.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Token bucket grants are monotone for monotone request times.
    #[test]
    fn token_bucket_monotone_grants(
        capacity in 1.0f64..50.0,
        rate in 0.5f64..100.0,
        gaps in prop::collection::vec(0u64..2_000_000_000, 1..50),
    ) {
        let mut tb = TokenBucket::new(capacity, rate);
        let mut now = SimTime::ZERO;
        let mut last_grant = SimTime::ZERO;
        for gap in gaps {
            now += SimTime::from_nanos(gap);
            let grant = tb.acquire_at(now, 1.0);
            prop_assert!(grant >= now);
            prop_assert!(grant >= last_grant, "grants must be monotone");
            last_grant = grant;
        }
    }

    /// A serial server is work-conserving: total busy time equals the sum
    /// of service times when requests arrive together.
    #[test]
    fn serial_server_work_conserving(services in prop::collection::vec(1u64..1_000_000, 1..50)) {
        let mut server = SerialServer::new();
        let mut expected_end = SimTime::ZERO;
        for &s in &services {
            let (_, end) = server.reserve(SimTime::ZERO, SimTime::from_nanos(s));
            expected_end += SimTime::from_nanos(s);
            prop_assert_eq!(end, expected_end);
        }
    }

    /// SimTime add/sub round-trips.
    #[test]
    fn simtime_arithmetic_roundtrip(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = SimTime::from_nanos(a);
        let tb = SimTime::from_nanos(b);
        prop_assert_eq!((ta + tb) - tb, ta);
        prop_assert_eq!((ta + tb).saturating_sub(ta + tb), SimTime::ZERO);
        prop_assert_eq!(ta.max(tb).min(ta.max(tb)), ta.max(tb));
    }

    /// Validated distributions always sample without panicking.
    #[test]
    fn valid_dists_sample(seed in any::<u64>(), kind in 0usize..6, p1 in 0.1f64..100.0, p2 in 0.1f64..100.0) {
        let d = match kind {
            0 => Dist::constant(p1),
            1 => Dist::Uniform { lo: p1.min(p2), hi: p1.max(p2) },
            2 => Dist::Exponential { mean: p1 },
            3 => Dist::LogNormal { mu: p1.ln(), sigma: p2 / 100.0 },
            4 => Dist::Weibull { scale: p1, shape: (p2 / 20.0).max(0.2) },
            _ => Dist::Gamma { shape: (p1 / 10.0).max(0.1), scale: p2 },
        };
        prop_assert!(d.validate().is_ok());
        let mut rng = Rng::seed_from(seed);
        for _ in 0..16 {
            let x = d.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }
}
