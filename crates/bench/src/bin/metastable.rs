//! Regenerates the retry-storm / metastable-failure artifact (outage
//! window under Poisson and MMPP load, with and without backoff and
//! shedding); `--samples N` overrides the default 3000-sample
//! methodology (§V).

fn main() {
    let samples = bench::report::PAPER_SAMPLES;
    let samples = std::env::args()
        .skip_while(|a| a != "--samples")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(samples);
    let report = bench::experiments::metastable::measure(samples).report();
    println!("{}", report.render());
}
