//! STeLLAR configuration files.
//!
//! The paper's framework is driven by two JSON documents (§IV):
//!
//! * a **static function configuration** consumed by the deployer —
//!   deployment method, memory size, replica count, image size;
//! * a **runtime configuration** consumed by the client — function mix,
//!   inter-arrival time distribution, burst size, execution time, chain
//!   length and transfer type.
//!
//! Both are modelled here as serde types with validation, so experiments
//! can be described in files exactly as STeLLAR users would.

use serde::{Deserialize, Serialize};

use faas_sim::types::{DeploymentMethod, Runtime, TransferMode};
use workload::spec::WorkloadSpec;

/// Static configuration of one function entry (deployer input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticFunction {
    /// Base name; replicas get `-0`, `-1`, … suffixes.
    pub name: String,
    /// Language runtime.
    pub runtime: Runtime,
    /// Deployment method (ZIP or container).
    pub deployment: DeploymentMethod,
    /// Instance memory, MB.
    pub memory_mb: u32,
    /// Extra random-content file added to the image, decimal MB (§IV).
    #[serde(default)]
    pub extra_image_mb: f64,
    /// Number of identical replicas — used to parallelise cold-start
    /// measurements (§IV).
    #[serde(default = "default_replicas")]
    pub replicas: u32,
}

fn default_replicas() -> u32 {
    1
}

impl StaticFunction {
    /// A single-replica Python ZIP function with paper-default memory.
    pub fn python_zip<S: Into<String>>(name: S) -> StaticFunction {
        StaticFunction {
            name: name.into(),
            runtime: Runtime::Python3,
            deployment: DeploymentMethod::Zip,
            memory_mb: 2048,
            extra_image_mb: 0.0,
            replicas: 1,
        }
    }

    /// Same, for Go.
    pub fn go_zip<S: Into<String>>(name: S) -> StaticFunction {
        StaticFunction { runtime: Runtime::Go, ..StaticFunction::python_zip(name) }
    }

    /// Sets the replica count (consuming).
    pub fn with_replicas(mut self, replicas: u32) -> StaticFunction {
        self.replicas = replicas;
        self
    }

    /// Sets the added image file size (consuming).
    pub fn with_extra_image_mb(mut self, mb: f64) -> StaticFunction {
        self.extra_image_mb = mb;
        self
    }

    /// Validates the entry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("function name is empty".into());
        }
        if self.memory_mb == 0 {
            return Err(format!("{}: memory_mb must be positive", self.name));
        }
        if self.replicas == 0 {
            return Err(format!("{}: replicas must be positive", self.name));
        }
        if !self.extra_image_mb.is_finite() || self.extra_image_mb < 0.0 {
            return Err(format!("{}: invalid extra_image_mb", self.name));
        }
        Ok(())
    }
}

/// The deployer's input document: a list of function entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticConfig {
    /// Functions to deploy.
    pub functions: Vec<StaticFunction>,
}

impl StaticConfig {
    /// Validates every entry.
    ///
    /// # Errors
    ///
    /// Returns the first entry error.
    pub fn validate(&self) -> Result<(), String> {
        if self.functions.is_empty() {
            return Err("no functions configured".into());
        }
        for f in &self.functions {
            f.validate()?;
        }
        Ok(())
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns parse or validation errors.
    pub fn from_json(json: &str) -> Result<StaticConfig, String> {
        let cfg: StaticConfig = serde_json::from_str(json).map_err(|e| e.to_string())?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("static config serialises")
    }
}

/// Inter-arrival time specification for invocation rounds (§IV: fixed,
/// stochastic or bursty traffic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "kind")]
pub enum IatSpec {
    /// Fixed spacing, ms.
    Fixed {
        /// Inter-arrival time, ms.
        ms: f64,
    },
    /// Exponential (Poisson arrivals), ms mean.
    Exponential {
        /// Mean inter-arrival time, ms.
        mean_ms: f64,
    },
    /// Uniform jitter in `[lo_ms, hi_ms]`.
    Uniform {
        /// Minimum IAT, ms.
        lo_ms: f64,
        /// Maximum IAT, ms.
        hi_ms: f64,
    },
}

impl IatSpec {
    /// The paper's *short* IAT for warm-function studies (3 s).
    pub fn short() -> IatSpec {
        IatSpec::Fixed { ms: 3_000.0 }
    }

    /// The paper's *long* IAT for cold-function studies (15 min).
    pub fn long() -> IatSpec {
        IatSpec::Fixed { ms: 900_000.0 }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            IatSpec::Fixed { ms } if *ms > 0.0 && ms.is_finite() => Ok(()),
            IatSpec::Fixed { ms } => Err(format!("fixed IAT must be positive: {ms}")),
            IatSpec::Exponential { mean_ms } if *mean_ms > 0.0 && mean_ms.is_finite() => Ok(()),
            IatSpec::Exponential { mean_ms } => {
                Err(format!("exponential IAT mean must be positive: {mean_ms}"))
            }
            IatSpec::Uniform { lo_ms, hi_ms } if *lo_ms > 0.0 && hi_ms >= lo_ms => Ok(()),
            IatSpec::Uniform { lo_ms, hi_ms } => {
                Err(format!("bad uniform IAT range [{lo_ms}, {hi_ms}]"))
            }
        }
    }
}

/// Chain configuration for data-transfer studies (§IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Number of functions in the chain, ≥2 (producer … consumer).
    pub length: u32,
    /// Payload transport between adjacent functions.
    pub mode: TransferMode,
    /// Payload size, bytes.
    pub payload_bytes: u64,
}

impl ChainConfig {
    /// Validates the chain.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.length < 2 {
            return Err(format!("chain length must be >= 2, got {}", self.length));
        }
        if self.payload_bytes == 0 {
            return Err("chained payload must be non-empty".into());
        }
        Ok(())
    }
}

/// The client's runtime configuration (§IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Inter-arrival time between invocation rounds.
    pub iat: IatSpec,
    /// Requests issued simultaneously per round (burst size; 1 = single
    /// invocations).
    #[serde(default = "default_burst")]
    pub burst_size: u32,
    /// Number of measured latency samples to collect (the paper uses
    /// 3000 per configuration).
    pub samples: u32,
    /// Rounds issued before measurement starts, excluded from results.
    #[serde(default)]
    pub warmup_rounds: u32,
    /// Function execution (busy-spin) time, ms.
    #[serde(default)]
    pub exec_ms: f64,
    /// Optional function chain (data-transfer studies).
    #[serde(default)]
    pub chain: Option<ChainConfig>,
    /// Optional workload model. When present it supersedes `iat`: the
    /// client runs the spec's arrival process (and open/closed-loop mode)
    /// instead of the legacy fixed-IAT rounds. Absent in legacy configs,
    /// which therefore behave exactly as before.
    #[serde(default)]
    pub workload: Option<WorkloadSpec>,
    /// Optional tail-tolerance policy. When present every logical request
    /// is driven by a policy state machine (hedging, retries, deadlines,
    /// tied requests); requires `burst_size == 1`. Absent in legacy
    /// configs, which therefore behave exactly as before.
    #[serde(default)]
    pub policy: Option<policy::PolicySpec>,
    /// Optional fault-injection schedule. When present (and not
    /// [`faults::FaultSpec::None`]) the cloud injects provider errors,
    /// crashes, keepalive-purge storms, capacity outages and network
    /// brownouts per the spec. Absent in legacy configs, which therefore
    /// behave exactly as before — byte for byte.
    #[serde(default)]
    pub faults: Option<faults::FaultSpec>,
}

fn default_burst() -> u32 {
    1
}

impl RuntimeConfig {
    /// Single-invocation workload with the given IAT and sample count.
    pub fn single(iat: IatSpec, samples: u32) -> RuntimeConfig {
        RuntimeConfig {
            iat,
            burst_size: 1,
            samples,
            warmup_rounds: 0,
            exec_ms: 0.0,
            chain: None,
            workload: None,
            policy: None,
            faults: None,
        }
    }

    /// Attaches a workload model (consuming); see
    /// [`RuntimeConfig::workload`].
    pub fn with_workload(mut self, spec: WorkloadSpec) -> RuntimeConfig {
        self.workload = Some(spec);
        self
    }

    /// Attaches a tail-tolerance policy (consuming); see
    /// [`RuntimeConfig::policy`].
    pub fn with_policy(mut self, spec: policy::PolicySpec) -> RuntimeConfig {
        self.policy = Some(spec);
        self
    }

    /// Attaches a fault-injection schedule (consuming); see
    /// [`RuntimeConfig::faults`].
    pub fn with_faults(mut self, spec: faults::FaultSpec) -> RuntimeConfig {
        self.faults = Some(spec);
        self
    }

    /// Number of rounds needed to produce `samples` measurements.
    pub fn measured_rounds(&self) -> u32 {
        self.samples.div_ceil(self.burst_size)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        self.iat.validate()?;
        if self.burst_size == 0 {
            return Err("burst_size must be positive".into());
        }
        if self.samples == 0 {
            return Err("samples must be positive".into());
        }
        if !self.exec_ms.is_finite() || self.exec_ms < 0.0 {
            return Err(format!("invalid exec_ms {}", self.exec_ms));
        }
        if let Some(chain) = &self.chain {
            chain.validate()?;
        }
        if let Some(workload) = &self.workload {
            workload.validate()?;
        }
        if let Some(policy) = &self.policy {
            policy.validate()?;
            if self.burst_size != 1 {
                return Err(format!(
                    "policies drive one logical request per arrival; burst_size must be 1, \
                     got {}",
                    self.burst_size
                ));
            }
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        Ok(())
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns parse or validation errors.
    pub fn from_json(json: &str) -> Result<RuntimeConfig, String> {
        let cfg: RuntimeConfig = serde_json::from_str(json).map_err(|e| e.to_string())?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("runtime config serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_function_builders() {
        let f = StaticFunction::python_zip("probe").with_replicas(100).with_extra_image_mb(10.0);
        assert_eq!(f.runtime, Runtime::Python3);
        assert_eq!(f.replicas, 100);
        assert_eq!(f.extra_image_mb, 10.0);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn static_validation() {
        assert!(StaticFunction::python_zip("").validate().is_err());
        assert!(StaticFunction::python_zip("x").with_replicas(0).validate().is_err());
        let mut f = StaticFunction::go_zip("y");
        f.memory_mb = 0;
        assert!(f.validate().is_err());
        assert!(StaticConfig { functions: vec![] }.validate().is_err());
    }

    #[test]
    fn static_config_json_round_trip() {
        let cfg = StaticConfig {
            functions: vec![StaticFunction::go_zip("f").with_extra_image_mb(100.0)],
        };
        let parsed = StaticConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, parsed);
    }

    #[test]
    fn iat_presets_match_paper() {
        assert_eq!(IatSpec::short(), IatSpec::Fixed { ms: 3_000.0 });
        assert_eq!(IatSpec::long(), IatSpec::Fixed { ms: 900_000.0 });
    }

    #[test]
    fn iat_validation() {
        assert!(IatSpec::Fixed { ms: 0.0 }.validate().is_err());
        assert!(IatSpec::Exponential { mean_ms: -1.0 }.validate().is_err());
        assert!(IatSpec::Uniform { lo_ms: 5.0, hi_ms: 1.0 }.validate().is_err());
        assert!(IatSpec::Uniform { lo_ms: 1.0, hi_ms: 5.0 }.validate().is_ok());
    }

    #[test]
    fn runtime_config_rounds() {
        let cfg = RuntimeConfig {
            iat: IatSpec::short(),
            burst_size: 100,
            samples: 3000,
            warmup_rounds: 2,
            exec_ms: 0.0,
            chain: None,
            workload: None,
            policy: None,
            faults: None,
        };
        assert_eq!(cfg.measured_rounds(), 30);
        assert!(cfg.validate().is_ok());
        // Uneven division rounds up.
        let cfg2 = RuntimeConfig { samples: 301, burst_size: 100, ..cfg };
        assert_eq!(cfg2.measured_rounds(), 4);
    }

    #[test]
    fn runtime_config_validation() {
        let good = RuntimeConfig::single(IatSpec::short(), 100);
        assert!(good.validate().is_ok());
        let mut bad = good.clone();
        bad.burst_size = 0;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.samples = 0;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.chain =
            Some(ChainConfig { length: 1, mode: TransferMode::Inline, payload_bytes: 1024 });
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.exec_ms = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn runtime_config_json_defaults() {
        let json = r#"{"iat": {"kind": "fixed", "ms": 3000.0}, "samples": 10}"#;
        let cfg = RuntimeConfig::from_json(json).unwrap();
        assert_eq!(cfg.burst_size, 1);
        assert_eq!(cfg.warmup_rounds, 0);
        assert_eq!(cfg.exec_ms, 0.0);
        assert!(cfg.chain.is_none());
        assert!(cfg.workload.is_none(), "legacy configs carry no workload model");
        assert!(cfg.faults.is_none(), "legacy configs carry no fault schedule");
    }

    #[test]
    fn runtime_config_faults_stanza_round_trips() {
        let json = r#"{
            "iat": {"kind": "fixed", "ms": 3000.0},
            "samples": 10,
            "faults": {"kind": "compose", "parts": [
                {"kind": "transient", "p": 0.05},
                {"kind": "outage", "start_ms": 30000.0, "duration_ms": 10000.0}
            ]}
        }"#;
        let cfg = RuntimeConfig::from_json(json).unwrap();
        let spec = cfg.faults.as_ref().expect("faults stanza parsed");
        assert!(!spec.is_none());
        let round = RuntimeConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, round);
        // Invalid stanzas are rejected at parse time.
        let bad = r#"{
            "iat": {"kind": "fixed", "ms": 3000.0},
            "samples": 10,
            "faults": {"kind": "transient", "p": 1.5}
        }"#;
        assert!(RuntimeConfig::from_json(bad).is_err());
    }

    #[test]
    fn runtime_config_workload_stanza_round_trips() {
        let json = r#"{
            "iat": {"kind": "fixed", "ms": 3000.0},
            "samples": 10,
            "workload": {
                "arrival": {"kind": "mmpp", "on_mean_ms": 500.0, "off_mean_ms": 5000.0,
                            "on_rate_per_s": 200.0, "off_rate_per_s": 1.0},
                "mode": {"mode": "closed", "concurrency": 8}
            }
        }"#;
        let cfg = RuntimeConfig::from_json(json).unwrap();
        let spec = cfg.workload.as_ref().expect("workload stanza parsed");
        assert!(matches!(spec.mode, workload::spec::ModeSpec::Closed { concurrency: 8 }));
        let round = RuntimeConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, round);
    }

    #[test]
    fn runtime_config_invalid_workload_is_rejected() {
        let json = r#"{
            "iat": {"kind": "fixed", "ms": 3000.0},
            "samples": 10,
            "workload": {
                "arrival": {"kind": "fixed", "ms": -5.0}
            }
        }"#;
        assert!(RuntimeConfig::from_json(json).is_err());
    }
}
