//! The cloud: gluing front end, load balancer, scheduler, workers,
//! instances and storage into one discrete-event model.
//!
//! [`CloudSim`] is the public entry point: deploy [`FunctionSpec`]s, submit
//! requests, advance simulated time, and drain [`Completion`]s and
//! [`TransferSample`]s. Internally a [`Cloud`] implements
//! [`simkit::engine::Model`] over [`CloudEvent`]s; each event corresponds
//! to a hand-off point of the invocation lifecycle in the paper's Fig 1.

use std::collections::{BTreeMap, HashMap};

use simkit::calqueue::CalQueueStats;
use simkit::dist::Dist;
use simkit::engine::{Model, Scheduler, SeqBlock, Simulation};
use simkit::metrics::Metrics;
use simkit::queue::FifoQueue;
use simkit::rng::Rng;
use simkit::time::SimTime;
use simkit::trace::{RingCollector, SpanRecord, TraceSink, Tracer};

pub use crate::arena::RequestSlabStats;
use crate::arena::{ColdReq, HotReq, RequestArena, XferInfo};
use crate::billing::{ResourceUsage, UsageTracker};
use crate::config::{ProviderConfig, ScalePolicy};
use crate::dag::DagPlan;
use crate::events::CloudEvent;
use crate::instance::Instance;
use crate::loadbalancer::DispatchServer;
use crate::request::{ColdBreakdown, Completion, RequestOrigin, TransferSample};
use crate::scheduler::{desired_spawns, periodic_step, CapacitySnapshot, SpawnGovernor};
use crate::spec::FunctionSpec;
use crate::storage::{ImageStore, PayloadStore};
use crate::types::{
    bytes_to_mb, DeploymentMethod, FunctionId, InstanceId, RequestId, TransferMode,
};

/// Component tags carried by emitted [`SpanRecord`]s: one per stage of the
/// invocation lifecycle in the paper's Fig 1, plus [`span_tag::REQUEST`]
/// for whole-request root spans.
///
/// `stellar-core`'s `Component` enum aligns 1:1 with the lifecycle tags;
/// a test in that crate keeps the two in sync.
pub mod span_tag {
    /// Whole-request root span (trace root for external requests; child of
    /// the producer's chain span for internal ones).
    pub const REQUEST: &str = "request";
    /// Client ↔ datacenter network propagation (outbound and return legs
    /// are separate spans under the same tag).
    pub const PROPAGATION: &str = "propagation";
    /// Front-end fleet processing.
    pub const FRONTEND: &str = "frontend";
    /// Load-balancer routing decision.
    pub const ROUTING: &str = "routing";
    /// Waiting for the dispatch server.
    pub const DISPATCH_WAIT: &str = "dispatch_wait";
    /// Inline payload travelling with the request.
    pub const INLINE_TRANSFER: &str = "inline_transfer";
    /// Waiting in the scheduler queue (or for a cold boot).
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Worker steering to the chosen instance.
    pub const STEER: &str = "steer";
    /// In-instance request handling overhead.
    pub const HANDLING: &str = "handling";
    /// Consumer-side payload retrieval from storage.
    pub const PAYLOAD_GET: &str = "payload_get";
    /// Handler execution.
    pub const EXECUTION: &str = "execution";
    /// Producer-side wait for a chained invocation round trip.
    pub const CHAIN: &str = "chain";
    /// Response-path overhead back through the front end.
    pub const RESPONSE: &str = "response";
}

/// Counter and gauge names maintained in the cloud's [`Metrics`] registry.
pub mod metric {
    /// External requests submitted.
    pub const REQUESTS_SUBMITTED: &str = "requests_submitted";
    /// External requests completed.
    pub const REQUESTS_COMPLETED: &str = "requests_completed";
    /// Instance boots started.
    pub const INSTANCES_SPAWNED: &str = "instances_spawned";
    /// Requests whose instance served them as its first use.
    pub const COLD_STARTS: &str = "cold_starts";
    /// Requests served by an already-used instance.
    pub const WARM_STARTS: &str = "warm_starts";
    /// Image fetches answered from a warm cache.
    pub const IMAGE_CACHE_HITS: &str = "image_cache_hits";
    /// Image fetches that missed the cache.
    pub const IMAGE_CACHE_MISSES: &str = "image_cache_misses";
    /// Boots that failed at completion and were retried.
    pub const BOOT_FAILURE_RETRIES: &str = "boot_failure_retries";
    /// Requests cancelled by the client (tail-tolerance policies).
    pub const REQUESTS_CANCELLED: &str = "requests_cancelled";
    /// Internal chain invocations issued.
    pub const CHAIN_INVOCATIONS: &str = "chain_invocations";
    /// Gauge: requests waiting (shared + committed queues), keyed by
    /// function index. Sampled on telemetry ticks.
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Gauge: idle + busy instances, keyed by function index.
    pub const INSTANCES_LIVE: &str = "instances_live";
    /// Gauge: booting instances, keyed by function index.
    pub const INSTANCES_BOOTING: &str = "instances_booting";
    /// Request-slab slots allocated fresh (never recycled).
    pub const REQUEST_SLOTS_ALLOCATED: &str = "request_slots_allocated";
    /// Request creations served by recycling a freed slot.
    pub const REQUEST_SLOTS_REUSED: &str = "request_slots_reused";
    /// Peak simultaneously-live requests (slab high-water mark).
    pub const REQUEST_SLOTS_HIGH_WATER: &str = "request_slots_high_water";
    /// Calendar-queue full rebuilds (resize + re-bucket passes).
    pub const CALQUEUE_REBUILDS: &str = "calqueue_rebuilds";
    /// Calendar-queue empty-day hunts that fell back to a full scan.
    pub const CALQUEUE_HUNT_FALLBACKS: &str = "calqueue_hunt_fallbacks";
    /// Calendar-queue rebuilds triggered by bucket overcrowding.
    pub const CALQUEUE_OVERCROWD_REBUILDS: &str = "calqueue_overcrowd_rebuilds";
    /// Fault events injected into requests (transient + crash + shed).
    pub const FAULTS_INJECTED: &str = "faults_injected";
    /// Requests rejected at the front end with a transient error.
    pub const FAULTS_TRANSIENT_ERRORS: &str = "faults_transient_errors";
    /// Executions killed mid-flight by an injected instance crash.
    pub const FAULTS_CRASHES: &str = "faults_crashes";
    /// Requests refused by admission control (queue-depth shedding).
    pub const FAULTS_SHED: &str = "faults_shed";
    /// Idle instances reaped by purge-storm events.
    pub const FAULTS_PURGED_INSTANCES: &str = "faults_purged_instances";
    /// Internal invocations issued by the DAG engine (fan-out children
    /// plus fired joins; compiled linear segments count as
    /// [`CHAIN_INVOCATIONS`]).
    pub const DAG_INVOCATIONS: &str = "dag_invocations";
    /// Join barriers fired.
    pub const JOINS_FIRED: &str = "joins_fired";
    /// Branch arrivals that reached a k-of-n join after it fired.
    pub const JOIN_STRAGGLERS: &str = "join_stragglers";

    /// Per-event-class dispatch counts from a profiled run, one counter
    /// per [`crate::events::CloudEvent`] variant, in `CLASS_NAMES` order.
    /// Recorded by [`super::CloudSim::record_profile_metrics`]; absent
    /// unless profiling was enabled.
    pub const PROFILE_COUNT: [&str; 13] = [
        "profile_count_frontend_arrive",
        "profile_count_routing_done",
        "profile_count_enqueued",
        "profile_count_boot_complete",
        "profile_count_compute_done",
        "profile_count_exec_done",
        "profile_count_completed",
        "profile_count_cancel",
        "profile_count_reap_check",
        "profile_count_scale_tick",
        "profile_count_telemetry_tick",
        "profile_count_fault_storm",
        "profile_count_join_arrive",
    ];
    /// Per-event-class wall-clock cost in nanoseconds (pop + dispatch +
    /// handler), parallel to [`PROFILE_COUNT`].
    pub const PROFILE_NS: [&str; 13] = [
        "profile_ns_frontend_arrive",
        "profile_ns_routing_done",
        "profile_ns_enqueued",
        "profile_ns_boot_complete",
        "profile_ns_compute_done",
        "profile_ns_exec_done",
        "profile_ns_completed",
        "profile_ns_cancel",
        "profile_ns_reap_check",
        "profile_ns_scale_tick",
        "profile_ns_telemetry_tick",
        "profile_ns_fault_storm",
        "profile_ns_join_arrive",
    ];
    /// Total wall-clock nanoseconds of the profiled event loop; the
    /// denominator of the cost table's coverage figure.
    pub const PROFILE_LOOP_NS: &str = "profile_loop_ns";
}

/// Errors returned by [`CloudSim::deploy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The spec failed validation.
    InvalidSpec(String),
    /// The chain references a function that was not deployed.
    UnknownChainTarget(FunctionId),
    /// An inline chained payload exceeds the provider's inline cap.
    InlinePayloadTooLarge {
        /// Requested payload, bytes.
        requested: u64,
        /// Provider limit, bytes.
        limit: u64,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::InvalidSpec(msg) => write!(f, "invalid function spec: {msg}"),
            DeployError::UnknownChainTarget(id) => {
                write!(f, "chain references unknown function {id}")
            }
            DeployError::InlinePayloadTooLarge { requested, limit } => write!(
                f,
                "inline payload of {requested} bytes exceeds provider limit of {limit} bytes"
            ),
        }
    }
}

impl std::error::Error for DeployError {}

/// Aggregate counters for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CloudStats {
    /// External requests submitted.
    pub submitted: u64,
    /// Internal (chain) requests issued.
    pub internal: u64,
    /// External completions recorded.
    pub completed: u64,
    /// Instance spawns started.
    pub spawns: u64,
    /// Instances reaped by keep-alive expiry.
    pub reaps: u64,
    /// Requests that missed the idle-instance lookup (dedicated spawn).
    pub lb_misses: u64,
    /// Requests that found a warm idle instance at enqueue time.
    pub warm_hits: u64,
    /// Boots that failed at completion and were retried.
    pub boot_failures: u64,
}

/// Wasted-work accounting for client-cancelled requests: what the cloud
/// spent on attempts whose results were never used (the extra-load cost
/// of hedging and retry policies).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CancelStats {
    /// Requests cancelled (external plus cascaded chain hops).
    pub cancelled: u64,
    /// Cancels that landed before the request ever reached an instance
    /// (no instance time wasted, only pipeline overhead).
    pub cancelled_unstarted: u64,
    /// Instance busy-time consumed by cancelled requests, ms. Partial
    /// when the cancel aborted an execution midway — the instance is
    /// freed at the cancel boundary, so only the elapsed share counts.
    pub wasted_busy_ms: f64,
}

/// One telemetry sample of a function's fleet state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSample {
    /// Sample timestamp.
    pub at: SimTime,
    /// The sampled function.
    pub function: FunctionId,
    /// Idle instances.
    pub idle: u32,
    /// Busy instances.
    pub busy: u32,
    /// Booting instances.
    pub booting: u32,
    /// Requests waiting (shared + committed queues).
    pub queued: u32,
}

#[derive(Debug)]
struct TimelineRecorder {
    interval: SimTime,
    samples: Vec<TimelineSample>,
}

/// Per-function runtime state.
#[derive(Debug)]
struct FunctionState {
    spec: FunctionSpec,
    instances: Vec<Instance>,
    /// Pending requests awaiting an instance (shared pull queue; used by
    /// pull-style policies such as `Periodic`).
    queue: FifoQueue<RequestId>,
    /// Per-instance committed queues (used by committed-assignment
    /// policies: `PerRequest`, `TargetConcurrency`). Parallel to
    /// `instances`.
    committed: Vec<std::collections::VecDeque<RequestId>>,
    /// Total requests sitting in committed queues.
    committed_total: u32,
    /// Indices into `instances` believed idle (validated on pop).
    idle_stack: Vec<u32>,
    /// Dense per-instance load mirror, parallel to `instances`:
    /// `loads[idx]` caches `load(idx)` for live instances and pins dead
    /// slots at `u32::MAX` (tombstones never win a min). Dead slots stay
    /// in `instances` forever — indices are stable ids — so the
    /// per-request least-loaded scan must not walk that struct-of-enums
    /// vector; a contiguous `u32` sweep stays in one or two cache lines
    /// per 16 instances and vectorizes. Committed assignment picks its
    /// target by `min` over `(load, idx)`, which is order-independent, so
    /// reading the cache is bit-identical to recomputing every entry.
    loads: Vec<u32>,
    n_idle: u32,
    n_busy: u32,
    n_booting: u32,
    scale_tick_armed: bool,
    /// Commit cap under the provider's scale policy, frozen at deploy —
    /// policy, spec and warm-path shares never change afterwards, and
    /// recomputing it (two analytic `Dist` medians) on every request
    /// showed up in the event-cost profile.
    commit_cap: Option<usize>,
    /// Image size in decimal MB (base + extra file).
    image_mb: f64,
    /// Lifetime/busy-time resource accounting.
    usage: UsageTracker,
    /// `(dag index, node index)` when this function was deployed as a
    /// DAG node; `None` for plain deployments. Gates every DAG arm in
    /// the hot path, so non-DAG runs stay byte-identical.
    dag_node: Option<(u32, u32)>,
}

impl FunctionState {
    fn snapshot(&self) -> CapacitySnapshot {
        CapacitySnapshot {
            queued: self.queue.len() as u32 + self.committed_total,
            busy: self.n_busy,
            idle: self.n_idle,
            booting: self.n_booting,
        }
    }

    fn total_instances(&self) -> u32 {
        self.n_idle + self.n_busy + self.n_booting
    }

    /// Outstanding load committed to instance `idx`: queued commitments
    /// plus the request it is executing. Ground truth for the debug-only
    /// load-cache lockstep check; release builds read the cache alone.
    #[cfg(debug_assertions)]
    fn load(&self, idx: usize) -> usize {
        self.committed[idx].len() + usize::from(self.instances[idx].is_busy())
    }

    /// Retires a just-died instance from the load cache: its slot is
    /// pinned at `u32::MAX` so the least-loaded scan skips the tombstone
    /// without a liveness check.
    fn unlive(&mut self, idx: u32) {
        debug_assert_ne!(self.loads[idx as usize], u32::MAX, "dying instance already dead");
        self.loads[idx as usize] = u32::MAX;
    }

    /// Debug-only lockstep check: every cached load matches a fresh
    /// recomputation (dead slots excepted — their ground truth is gone).
    #[cfg(debug_assertions)]
    fn check_loads(&self) {
        for (idx, &cached) in self.loads.iter().enumerate() {
            if cached != u32::MAX {
                debug_assert_eq!(cached as usize, self.load(idx), "load cache desync at {idx}");
            }
        }
    }
}

/// Requests-per-instance cap for committed-assignment policies given the
/// function's expected per-request service time; `None` selects the shared
/// pull queue.
fn commit_cap(policy: &ScalePolicy, service_estimate_ms: f64) -> Option<usize> {
    match policy {
        ScalePolicy::PerRequest => Some(1),
        ScalePolicy::TargetConcurrency { target } => Some((*target).ceil().max(1.0) as usize),
        ScalePolicy::Periodic { .. } => None,
        // Obs 7 extension: queue while the expected wait (load × service)
        // stays below the expected cold-start delay, else spawn.
        ScalePolicy::CostAware { cold_estimate_ms } => {
            let cap = (cold_estimate_ms / service_estimate_ms.max(1e-3)).floor();
            Some(cap.clamp(1.0, 10_000.0) as usize)
        }
    }
}

/// Handles to a deployed workflow (see [`CloudSim::deploy_dag`]).
#[derive(Debug, Clone)]
pub struct DagDeployment {
    /// The workflow's entry function: submit external requests here.
    pub root: FunctionId,
    /// One function per plan node, indexed like [`DagPlan::nodes`].
    pub functions: Vec<FunctionId>,
}

/// Straggler-amplification statistics of one join node, computed over
/// every barrier firing of the run (see [`CloudSim::dag_join_stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStats {
    /// The join function.
    pub function: FunctionId,
    /// Barriers fired (one per workflow invocation that reached the join).
    pub fired: u64,
    /// Arrivals that reached a k-of-n barrier after it fired.
    pub stragglers: u64,
    /// Branch arrivals observed.
    pub branch_samples: u64,
    /// p99 of individual branch latencies (branch issue to barrier
    /// arrival), ms.
    pub branch_p99_ms: f64,
    /// p99 of barrier-fire latencies (earliest counted branch issue to
    /// the k-th arrival), ms — governed by the max over branches.
    pub join_p99_ms: f64,
    /// `join_p99_ms / branch_p99_ms`: the tail-at-scale amplification a
    /// fan-out/fan-in stage adds over a single branch.
    pub amplification: f64,
}

/// Per-node conservation counters for DAG-engine-spawned requests
/// (fan-out children and fired joins; compiled linear hops are accounted
/// by the legacy chain path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DagNodeCounters {
    /// Requests the DAG engine spawned for this node.
    pub spawned: u64,
    /// Spawned requests that completed.
    pub completed: u64,
    /// Spawned requests retired by a cancellation cascade.
    pub cancelled: u64,
}

/// One resolved out-edge of a deployed DAG node.
#[derive(Debug, Clone)]
struct RuntimeEdge {
    /// Target function.
    target: FunctionId,
    mode: TransferMode,
    /// Payload-size distribution, bytes.
    payload: Dist,
    /// `Some((k, n))` when the target is a fan-in barrier needing `k` of
    /// `n` arrivals; `None` spawns a direct child request.
    join: Option<(u32, u32)>,
}

/// Runtime view of one deployed DAG node: just the out-edges the fork
/// handler walks (linear-compiled edges are lowered into `spec.chain`
/// and excluded here).
#[derive(Debug, Clone)]
struct RuntimeNode {
    out: Vec<RuntimeEdge>,
}

/// A deployed workflow's runtime edge table.
#[derive(Debug, Clone)]
struct InstalledDag {
    nodes: Vec<RuntimeNode>,
}

/// One branch arrival recorded at a join barrier before it fires.
#[derive(Debug, Clone, Copy)]
struct JoinArrival {
    /// The producer request now blocked on the barrier.
    parent: RequestId,
    mode: TransferMode,
    payload_bytes: u64,
    send_start: SimTime,
    parent_tag: u64,
}

/// Barrier state of one (workflow, join-function) pair.
#[derive(Debug)]
struct JoinBarrier {
    /// Arrivals required to fire.
    needed: u32,
    /// Total inbound edges (all arrivals ever expected).
    total: u32,
    /// Arrivals seen so far (counted and stragglers).
    arrived: u32,
    /// Whether the barrier has fired; set exactly once.
    fired: bool,
    /// Earliest issue time over counted arrivals' producers (join-latency
    /// numerator base).
    min_issue: SimTime,
    /// Counted arrivals, in arrival order; drained into [`JoinMeta`] at
    /// fire time.
    arrivals: Vec<JoinArrival>,
}

/// Side table of a fired join request: who to resume at its completion
/// and the per-edge transfer records to emit at assignment.
#[derive(Debug)]
struct JoinMeta {
    /// Producers blocked on the join round trip, in arrival order.
    parents: Vec<RequestId>,
    /// The counted arrivals (per-edge transfer accounting).
    edges: Vec<JoinArrival>,
}

/// Payload metadata for an in-flight [`CloudEvent::JoinArrive`], keyed by
/// `(producer packed id, join function index)` — the event itself stays
/// a two-id `Copy`.
#[derive(Debug, Clone, Copy)]
struct PendingArrival {
    mode: TransferMode,
    payload_bytes: u64,
    send_start: SimTime,
    /// Barrier parameters of the target (k, n).
    needed: u32,
    total: u32,
}

/// Latency accumulator of one join function.
#[derive(Debug, Default)]
struct JoinAccum {
    /// Per-branch latencies: producer issue to barrier arrival, ms.
    branch_ms: Vec<f64>,
    /// Per-firing latencies: earliest counted issue to fire, ms.
    join_ms: Vec<f64>,
    stragglers: u64,
    fired: u64,
}

/// The cloud model (see module docs). Use through [`CloudSim`].
#[derive(Debug)]
pub struct Cloud {
    cfg: ProviderConfig,
    functions: Vec<FunctionState>,
    /// Generational hot/cold slab of per-request state: slots are recycled
    /// once a request completes, so long streaming runs carry O(active
    /// requests) bookkeeping instead of one entry per submission ever made.
    /// Per-event-hot fields and lifecycle-boundary fields live in separate
    /// parallel arrays (see [`crate::arena`]).
    requests: RequestArena,
    /// Sticky assignment: instance -> request it was spawned for.
    sticky: HashMap<InstanceId, RequestId>,
    /// Cold-start stage attribution per instance.
    cold_breakdowns: HashMap<InstanceId, ColdBreakdown>,
    dispatch: DispatchServer,
    governor: SpawnGovernor,
    image_store: ImageStore,
    payload_store: PayloadStore,
    rng_net: Rng,
    /// Detached network-RNG stream serving an open submission window (see
    /// [`CloudSim::open_submission_window`]): while set, `submit` draws
    /// propagation delays from here so interleaving submissions with
    /// event processing replays the exact draw order of an up-front
    /// submission pass.
    submission_rng: Option<Rng>,
    rng_path: Rng,
    rng_exec: Rng,
    rng_cold: Rng,
    rng_lb: Rng,
    completions: Vec<Completion>,
    transfers: Vec<TransferSample>,
    timeline: Option<TimelineRecorder>,
    stats: CloudStats,
    cancel_stats: CancelStats,
    /// Span tracing; `None` (the default) costs one discriminant check per
    /// emission site.
    trace: Option<Tracer>,
    /// Always-on counters plus tick-sampled gauges.
    metrics: Metrics,
    /// Dedicated fault-injection stream. Forked unconditionally (forking
    /// hashes the label without advancing the parent, so faults-off runs
    /// stay byte-identical); only consulted when a plan is installed.
    rng_faults: Rng,
    /// Compiled fault schedule; `None` (the default) gates every fault
    /// arm before any draw or event, preserving byte-identity.
    fault_plan: Option<faults::FaultPlan>,
    /// Injection and degradation counters (all zero without a plan).
    fault_stats: faults::FaultStats,
    /// Deployed workflow edge tables; indexed by `FunctionState::dag_node`.
    dags: Vec<InstalledDag>,
    /// Dedicated DAG stream (per-edge payload draws). Forked
    /// unconditionally — forking hashes the label without advancing the
    /// parent — and only consulted by deployed workflows, so DAG-free
    /// runs stay byte-identical.
    rng_dag: Rng,
    /// Join barriers keyed by `(workflow root packed id, join function
    /// index)`. BTreeMap: iteration/removal order must be deterministic —
    /// it feeds slot-reuse order, which feeds trace digests.
    join_barriers: BTreeMap<(u64, u32), JoinBarrier>,
    /// Fired-join side tables keyed by the join request's packed id.
    join_meta: BTreeMap<u64, JoinMeta>,
    /// DAG children spawned by each producer (packed id), for the
    /// cancellation cascade. Cleared when the producer's obligations
    /// resolve.
    dag_children: BTreeMap<u64, Vec<RequestId>>,
    /// In-flight `JoinArrive` payload metadata, keyed by `(producer
    /// packed id, join function index)`.
    pending_arrivals: BTreeMap<(u64, u32), PendingArrival>,
    /// Per-join-function latency accumulators, keyed by function index.
    join_accums: BTreeMap<u32, JoinAccum>,
    /// Per-node conservation counters, keyed by function index.
    dag_counters: BTreeMap<u32, DagNodeCounters>,
    /// Internal (chain hop, fan-out child, join) completions, recorded
    /// only when `record_internal` is set — the main `completions`
    /// stream drives client expected-count logic and must stay
    /// external-only.
    internal_completions: Vec<Completion>,
    /// Whether to record internal completions (per-stage breakdowns).
    record_internal: bool,
}

impl Cloud {
    fn new(cfg: ProviderConfig, seed: u64) -> Cloud {
        cfg.validate().expect("invalid provider config");
        let root = Rng::seed_from(seed);
        Cloud {
            dispatch: DispatchServer::new(cfg.dispatch.clone()),
            governor: SpawnGovernor::new(&cfg.scaling),
            image_store: ImageStore::new(cfg.image_store.clone(), root.fork("image-store")),
            payload_store: PayloadStore::new(cfg.payload_store.clone(), root.fork("payload-store")),
            rng_net: root.fork("network"),
            submission_rng: None,
            rng_path: root.fork("warm-path"),
            rng_exec: root.fork("exec"),
            rng_cold: root.fork("cold-start"),
            rng_lb: root.fork("load-balancer"),
            rng_faults: root.fork("faults"),
            fault_plan: None,
            fault_stats: faults::FaultStats::default(),
            dags: Vec::new(),
            rng_dag: root.fork("dag"),
            join_barriers: BTreeMap::new(),
            join_meta: BTreeMap::new(),
            dag_children: BTreeMap::new(),
            pending_arrivals: BTreeMap::new(),
            join_accums: BTreeMap::new(),
            dag_counters: BTreeMap::new(),
            internal_completions: Vec::new(),
            record_internal: false,
            cfg,
            functions: Vec::new(),
            requests: RequestArena::default(),
            sticky: HashMap::new(),
            cold_breakdowns: HashMap::new(),
            completions: Vec::new(),
            transfers: Vec::new(),
            timeline: None,
            stats: CloudStats::default(),
            cancel_stats: CancelStats::default(),
            trace: None,
            metrics: Metrics::new(),
        }
    }

    fn fstate(&self, fid: FunctionId) -> &FunctionState {
        &self.functions[fid.index()]
    }

    fn fstate_mut(&mut self, fid: FunctionId) -> &mut FunctionState {
        &mut self.functions[fid.index()]
    }

    /// The commit cap for `fid` under the configured policy (frozen at
    /// deploy; see [`FunctionState::commit_cap`]).
    fn committed_cap(&self, fid: FunctionId) -> Option<usize> {
        self.fstate(fid).commit_cap
    }

    fn create_request(
        &mut self,
        function: FunctionId,
        origin: RequestOrigin,
        tag: u64,
        issued_at: SimTime,
        xfer_in: Option<XferInfo>,
    ) -> RequestId {
        let root_span = self.trace.as_mut().map(Tracer::alloc_id);
        self.requests.create(function, issued_at, ColdReq::new(origin, tag, xfer_in, root_span))
    }

    fn hot(&self, rid: RequestId) -> &HotReq {
        self.requests.hot(rid)
    }

    fn hot_mut(&mut self, rid: RequestId) -> &mut HotReq {
        self.requests.hot_mut(rid)
    }

    fn cold(&self, rid: RequestId) -> &ColdReq {
        self.requests.cold(rid)
    }

    fn cold_mut(&mut self, rid: RequestId) -> &mut ColdReq {
        self.requests.cold_mut(rid)
    }

    /// Whether `rid` still refers to a live request (its slot occupied
    /// and its generation current). A cancel racing a completion makes
    /// stale ids an expected input, not a bug.
    fn is_live(&self, rid: RequestId) -> bool {
        self.requests.is_live(rid)
    }

    /// The external root of `rid`'s workflow: the propagated ancestor for
    /// spawned requests, the request itself for external roots. Keys the
    /// join barriers so concurrent invocations of one DAG never share
    /// state.
    fn wf_root_of(&self, rid: RequestId) -> RequestId {
        self.cold(rid).wf_root.unwrap_or(rid)
    }

    /// Emits one component span under `rid`'s root span. No-op when
    /// tracing is off or the request predates it. Emission draws no
    /// randomness and schedules no events, so enabling a trace cannot
    /// perturb simulation results.
    fn emit_span(&mut self, rid: RequestId, component: &'static str, start: SimTime, end: SimTime) {
        if self.trace.is_none() {
            return;
        }
        let Some(parent) = self.cold(rid).root_span else { return };
        let tracer = self.trace.as_mut().expect("checked above");
        let span_id = tracer.alloc_id();
        tracer.emit(SpanRecord {
            span_id,
            parent: Some(parent),
            request: rid.packed(),
            component,
            start,
            end,
        });
    }

    /// Emits `rid`'s root span, covering issue to completion. `parent` is
    /// `None` for external requests and the producer's chain span for
    /// internal ones.
    fn emit_root_span(&mut self, rid: RequestId, end: SimTime, parent: Option<u64>) {
        if self.trace.is_none() {
            return;
        }
        let Some(span_id) = self.cold(rid).root_span else { return };
        let start = self.hot(rid).issued_at;
        let tracer = self.trace.as_mut().expect("checked above");
        tracer.emit(SpanRecord {
            span_id,
            parent,
            request: rid.packed(),
            component: span_tag::REQUEST,
            start,
            end,
        });
    }

    /// Retires a cancelled request's slot, then walks every reference
    /// that can never be reached again: a chain hop's producer (once the
    /// producer's `ComputeDone` has fired, the hop is the only remaining
    /// reference — its `ExecDone` is scheduled by the hop's completion,
    /// which a cancelled hop never performs), and, for a fired join, the
    /// branch producers blocked on its round trip. An iterative worklist
    /// rather than recursion: a deep chain cancelled mid-flight would
    /// otherwise nest one stack frame per hop.
    fn free_cancelled(&mut self, rid: RequestId) {
        let mut work = vec![rid];
        while let Some(r) = work.pop() {
            // A slot can be queued for freeing through two paths (e.g. a
            // producer referenced by two cancelled children); the first
            // free bumps the generation so later visits are no-ops.
            if !self.is_live(r) {
                continue;
            }
            let (hot, cold) = self.requests.free(r);
            if hot.dag_spawn() {
                self.dag_counters.entry(hot.function.0).or_default().cancelled += 1;
            }
            self.dag_children.remove(&r.packed());
            if let Some(meta) = self.join_meta.remove(&r.packed()) {
                for parent in meta.parents {
                    if self.is_live(parent) && self.hot(parent).cancelled() {
                        work.push(parent);
                    }
                }
            }
            if let RequestOrigin::Internal { parent } = cold.origin {
                if self.is_live(parent) && self.hot(parent).cancelled() {
                    work.push(parent);
                }
            }
        }
    }

    /// Executes a client cancellation. The request may legitimately be
    /// gone (completed in the same event batch) or already cancelled —
    /// both are no-ops. Otherwise the whole in-flight workflow below it
    /// is collected (chain hops and DAG children alike) and cancelled
    /// deepest-first — iteratively, so an N-deep chain costs O(N) heap
    /// instead of N stack frames — and any join barriers keyed under the
    /// request are torn down, freeing branch producers that were blocked
    /// on them. Each cancelled request is marked; if it is executing,
    /// its instance is freed *now* and the elapsed busy time booked as
    /// waste; if it is queued or mid-pipeline, the slot is retired by
    /// whichever handler or queue pop touches it next.
    fn on_cancel(&mut self, now: SimTime, rid: RequestId, sched: &mut Scheduler<CloudEvent>) {
        if !self.is_live(rid) || self.hot(rid).cancelled() {
            return;
        }
        // Preorder collection of the spawn tree...
        let mut order = vec![rid];
        let mut i = 0;
        while i < order.len() {
            let r = order[i];
            i += 1;
            if let Some(child) = self.cold(r).chain_child {
                if self.is_live(child) {
                    order.push(child);
                }
            }
            if let Some(kids) = self.dag_children.get(&r.packed()) {
                for &kid in kids {
                    if self.is_live(kid) {
                        order.push(kid);
                    }
                }
            }
        }
        // ...processed reversed (deepest-first), matching the recursive
        // cascade's event-scheduling order exactly: each cancel may free
        // an instance and pull queued work, so the order is part of the
        // deterministic event sequence.
        for j in (0..order.len()).rev() {
            self.cancel_one(now, order[j], sched);
        }
        // Tear down any barriers of the workflow rooted here: producers
        // recorded as arrivals have no pending lifecycle event of their
        // own (they were waiting for the barrier to fire), so they are
        // freed now or never.
        let root_key = rid.packed();
        let barrier_keys: Vec<(u64, u32)> = self
            .join_barriers
            .range((root_key, 0)..=(root_key, u32::MAX))
            .map(|(key, _)| *key)
            .collect();
        for key in barrier_keys {
            let barrier = self.join_barriers.remove(&key).expect("key just listed");
            for arrival in barrier.arrivals {
                if self.is_live(arrival.parent) && self.hot(arrival.parent).cancelled() {
                    self.free_cancelled(arrival.parent);
                }
            }
        }
    }

    /// Marks and unwinds one request of a cancellation cascade (the body
    /// the recursive `on_cancel` used to run per hop).
    fn cancel_one(&mut self, now: SimTime, rid: RequestId, sched: &mut Scheduler<CloudEvent>) {
        if !self.is_live(rid) || self.hot(rid).cancelled() {
            return;
        }
        self.hot_mut(rid).set_cancelled();
        self.cancel_stats.cancelled += 1;
        self.metrics.inc(metric::REQUESTS_CANCELLED);
        if self.fault_plan.is_some() && self.cold(rid).origin.is_external() {
            self.fault_stats.cancelled += 1;
        }

        let (fid, instance, assigned_at, busy_ms) = {
            let hot = self.hot(rid);
            let b = &self.cold(rid).breakdown;
            (
                hot.function,
                hot.instance,
                hot.assigned_at,
                b.steer_ms + b.handling_ms + b.payload_get_ms + b.exec_ms + b.chain_ms,
            )
        };
        let Some(iid) = instance else {
            // Never reached an instance: queued, sticky-waiting or still
            // in the pre-queue pipeline. No instance time to waste; the
            // slot is freed lazily.
            self.cancel_stats.cancelled_unstarted += 1;
            return;
        };
        let busy_on_this = {
            let inst = &self.fstate(fid).instances[iid.idx as usize];
            matches!(inst.state(), crate::instance::InstanceState::Busy { request } if request == rid)
        };
        if busy_on_this {
            // Abort mid-flight: the instance is freed at this event
            // boundary and only the elapsed share of its busy time is
            // wasted.
            let started = assigned_at.expect("busy request without an assignment time");
            self.cancel_stats.wasted_busy_ms += (now - started).as_millis();
            {
                let state = self.fstate_mut(fid);
                state.instances[iid.idx as usize].release(rid, now);
                state.usage.on_release(iid.idx as usize, now);
                state.n_busy -= 1;
                state.n_idle += 1;
                state.loads[iid.idx as usize] -= 1;
                state.idle_stack.push(iid.idx);
            }
            // The freed instance can take new work immediately.
            if self.committed_cap(fid).is_some() {
                if !self.serve_committed(now, iid, sched) {
                    self.maybe_schedule_reap(now, iid, sched);
                }
            } else {
                self.serve_queue(now, fid, sched);
                self.maybe_schedule_reap(now, iid, sched);
            }
            // The slot itself is retired by the request's still-pending
            // lifecycle event (`ComputeDone`/`ExecDone`) or, for a chain
            // producer, by its cancelled hop.
        } else {
            // Execution already finished; the response in flight will be
            // dropped at `Completed`, so the full busy span was wasted.
            self.cancel_stats.wasted_busy_ms += busy_ms;
        }
    }

    // ---- fault injection --------------------------------------------------

    /// Resolves an external request with a provider-style error: the
    /// rejection travels straight back to the client (skipping the
    /// response-path overhead an instance would add), with the return
    /// propagation drawn from the dedicated fault stream so the baseline
    /// network stream is untouched.
    fn fail_request(
        &mut self,
        now: SimTime,
        rid: RequestId,
        code: u16,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        debug_assert!(self.cold(rid).origin.is_external(), "faults only hit external requests");
        let prop_back_ms = self.cfg.network.prop_delay_ms.sample(&mut self.rng_faults);
        let cold = self.cold_mut(rid);
        cold.error = Some(code);
        cold.breakdown.prop_back_ms = prop_back_ms;
        sched.schedule_in(now, SimTime::from_millis(prop_back_ms), CloudEvent::Completed(rid));
    }

    /// Kills `iid` while it executes `rid`: the busy time is booked as
    /// waste, commitments queued behind the dead instance are
    /// redistributed (the failed-boot idiom), and the client receives a
    /// 500.
    fn crash_instance(
        &mut self,
        now: SimTime,
        rid: RequestId,
        iid: InstanceId,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        let fid = iid.function();
        let started = self.hot(rid).assigned_at.expect("crashed request was never assigned");
        self.fault_stats.injected += 1;
        self.fault_stats.crashes += 1;
        self.fault_stats.wasted_busy_ms += (now - started).as_millis();
        self.metrics.inc(metric::FAULTS_INJECTED);
        self.metrics.inc(metric::FAULTS_CRASHES);
        {
            let state = self.fstate_mut(fid);
            state.instances[iid.idx as usize].crash(rid);
            state.unlive(iid.idx);
            // Bank the busy span, then the lifetime: the instance is gone.
            state.usage.on_release(iid.idx as usize, now);
            state.usage.on_reap(iid.idx as usize, now);
            state.n_busy -= 1;
        }
        if self.committed_cap(fid).is_some() {
            let orphaned = std::mem::take(&mut self.fstate_mut(fid).committed[iid.idx as usize]);
            self.fstate_mut(fid).committed_total -= orphaned.len() as u32;
            for orphan in orphaned {
                if self.hot(orphan).cancelled() {
                    self.free_cancelled(orphan);
                } else {
                    let cap = self.committed_cap(fid).expect("checked above");
                    self.enqueue_committed(now, orphan, fid, cap, sched);
                }
            }
        }
        self.fail_request(now, rid, 500, sched);
    }

    /// Purge-storm tick: reap every idle instance in the fleet, then
    /// reschedule with an exponential gap — only while other work is
    /// pending, so runs still drain to idle (telemetry-tick idiom).
    fn on_fault_storm(&mut self, now: SimTime, sched: &mut Scheduler<CloudEvent>) {
        let Some(plan) = self.fault_plan.take() else { return };
        let Some(storm) = plan.storm else {
            self.fault_plan = Some(plan);
            return;
        };
        self.fault_stats.storms += 1;
        for f in 0..self.functions.len() {
            let state = &mut self.functions[f];
            for idx in 0..state.instances.len() {
                let epoch = state.instances[idx].epoch();
                if state.instances[idx].try_reap(epoch) {
                    state.unlive(idx as u32);
                    state.usage.on_reap(idx, now);
                    state.n_idle -= 1;
                    self.stats.reaps += 1;
                    self.fault_stats.purged_instances += 1;
                    self.metrics.inc(metric::FAULTS_PURGED_INSTANCES);
                }
            }
        }
        if !sched.is_empty() {
            let gap_ms = -storm.mean_gap_ms * self.rng_faults.next_f64_open().ln();
            sched.schedule_in(now, SimTime::from_millis(gap_ms), CloudEvent::FaultStorm);
        }
        self.fault_plan = Some(plan);
    }

    // ---- event handlers ---------------------------------------------------

    fn on_frontend_arrive(
        &mut self,
        now: SimTime,
        rid: RequestId,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        if self.hot(rid).cancelled() {
            self.free_cancelled(rid);
            return;
        }
        // Transient provider errors (throttle / 5xx) reject external
        // requests at the front door. One roll per source, in spec order,
        // first hit wins; every draw comes from the fault stream.
        if let Some(plan) = self.fault_plan.take() {
            let mut hit = None;
            if self.cold(rid).origin.is_external() {
                for t in &plan.transients {
                    if self.rng_faults.bernoulli(t.p) {
                        hit = Some(t.code);
                        break;
                    }
                }
            }
            self.fault_plan = Some(plan);
            if let Some(code) = hit {
                self.fault_stats.injected += 1;
                self.fault_stats.transient_errors += 1;
                self.metrics.inc(metric::FAULTS_INJECTED);
                self.metrics.inc(metric::FAULTS_TRANSIENT_ERRORS);
                self.fail_request(now, rid, code, sched);
                return;
            }
        }
        let overhead = self.cfg.warm_path.overhead_ms.sample(&mut self.rng_path);
        let shares = self.cfg.warm_path.shares;
        let frontend_ms = overhead * shares.frontend;
        let routing_ms = overhead * shares.routing;

        // Inline payload travels with the request into the datacenter.
        let xfer = self.cold(rid).xfer_in;
        let inline_ms = match xfer {
            Some(x) if x.mode == TransferMode::Inline => {
                let bw = self.cfg.network.inline_bandwidth_mbps.sample(&mut self.rng_net).max(0.01);
                bytes_to_mb(x.payload_bytes) / bw * 1000.0
            }
            _ => 0.0,
        };

        let cold = self.cold_mut(rid);
        cold.warm_overhead_ms = overhead;
        cold.breakdown.frontend_ms = frontend_ms;
        cold.breakdown.routing_ms = routing_ms;
        cold.breakdown.inline_transfer_ms = inline_ms;
        let delay = SimTime::from_millis(frontend_ms + routing_ms + inline_ms);
        if self.trace.is_some() {
            // Cumulative boundaries telescope, so the spans tile
            // [now, now + delay] exactly despite nanosecond rounding.
            let s1 = now + SimTime::from_millis(frontend_ms);
            let s2 = now + SimTime::from_millis(frontend_ms + routing_ms);
            let s3 = now + delay;
            self.emit_span(rid, span_tag::FRONTEND, now, s1);
            self.emit_span(rid, span_tag::ROUTING, s1, s2);
            if inline_ms > 0.0 {
                self.emit_span(rid, span_tag::INLINE_TRANSFER, s2, s3);
            }
        }
        sched.schedule_in(now, delay, CloudEvent::RoutingDone(rid));
    }

    fn on_routing_done(&mut self, now: SimTime, rid: RequestId, sched: &mut Scheduler<CloudEvent>) {
        if self.hot(rid).cancelled() {
            self.free_cancelled(rid);
            return;
        }
        let outcome = self.dispatch.dispatch(now, &mut self.rng_lb);
        self.cold_mut(rid).breakdown.dispatch_wait_ms = (outcome.ready_at - now).as_millis();
        self.emit_span(rid, span_tag::DISPATCH_WAIT, now, outcome.ready_at);
        sched.schedule_at(outcome.ready_at, CloudEvent::Enqueued(rid));
    }

    fn on_enqueued(&mut self, now: SimTime, rid: RequestId, sched: &mut Scheduler<CloudEvent>) {
        if self.hot(rid).cancelled() {
            self.free_cancelled(rid);
            return;
        }
        let fid = self.hot(rid).function;

        // Admission control (graceful degradation): an external request
        // arriving at a queue already `shed_limit` deep is refused with an
        // explicit 503 instead of deepening the backlog. Draws no
        // randomness; the terminal bucket is counted once, at completion.
        if let Some(limit) = self.fault_plan.as_ref().and_then(|plan| plan.shed_limit) {
            let depth = {
                let state = self.fstate(fid);
                state.queue.len() as u32 + state.committed_total
            };
            if depth >= limit && self.cold(rid).origin.is_external() {
                self.fault_stats.injected += 1;
                self.metrics.inc(metric::FAULTS_INJECTED);
                self.metrics.inc(metric::FAULTS_SHED);
                self.hot_mut(rid).set_shed();
                self.fail_request(now, rid, 503, sched);
                return;
            }
        }
        self.hot_mut(rid).wait_started = Some(now);

        // LB lookup miss: a dedicated spawn for this request. Misses are a
        // concurrency artefact (racing idle-instance lookups), so they
        // require live instances to race over AND other work in flight
        // (§VI-D1 burst tails) — and capacity to spawn into.
        let concurrent = {
            let state = self.fstate(fid);
            (state.n_busy > 0 || state.n_idle > 0)
                && (state.n_busy > 0 || state.committed_total > 0 || !state.queue.is_empty())
        };
        if concurrent
            && self.fstate(fid).total_instances() < self.cfg.limits.max_instances_per_function
            && self.dispatch.rolls_miss(&mut self.rng_lb)
        {
            self.stats.lb_misses += 1;
            let iid = self.spawn_instance(now, fid, sched);
            self.sticky.insert(iid, rid);
            return;
        }

        match self.committed_cap(fid) {
            Some(cap) => self.enqueue_committed(now, rid, fid, cap, sched),
            None => {
                if self.fstate(fid).n_idle > 0 {
                    self.stats.warm_hits += 1;
                }
                self.fstate_mut(fid).queue.push(now, rid);
                self.serve_queue(now, fid, sched);
                self.scale(now, fid, sched);
            }
        }
    }

    /// Committed assignment (AWS / Google style): pick the least-loaded
    /// live instance; spawn a fresh one if every instance is at the cap
    /// and headroom remains. The request then belongs to that instance.
    fn enqueue_committed(
        &mut self,
        now: SimTime,
        rid: RequestId,
        fid: FunctionId,
        cap: usize,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        // One contiguous sweep over the u32 load cache (dead slots are
        // pinned at MAX and can never win); recomputing load() per
        // instance would touch two scattered arrays per candidate, and
        // this scan runs once per request.
        #[cfg(debug_assertions)]
        self.fstate(fid).check_loads();
        let best = {
            let state = self.fstate(fid);
            // Two passes, both of which vectorize: the minimum load, then
            // the first slot holding it. That pair is exactly the `min`
            // over `(load, idx)` tuples — ties break to the lowest index.
            match state.loads.iter().copied().min() {
                None | Some(u32::MAX) => None,
                Some(min) => {
                    let idx =
                        state.loads.iter().position(|&l| l == min).expect("minimum just found");
                    Some((min as usize, idx))
                }
            }
        };
        let headroom =
            self.fstate(fid).total_instances() < self.cfg.limits.max_instances_per_function;
        let target_idx = match best {
            Some((load, idx)) if load < cap => {
                if self.fstate(fid).instances[idx].is_idle() {
                    self.stats.warm_hits += 1;
                }
                idx
            }
            _ if headroom => {
                let iid = self.spawn_instance(now, fid, sched);
                iid.idx as usize
            }
            Some((_, idx)) => idx, // at the cap but no headroom: overcommit
            None => unreachable!("no instances and no headroom"),
        };
        let state = self.fstate_mut(fid);
        let iid = state.instances[target_idx].id();
        if state.instances[target_idx].is_idle() && state.committed[target_idx].is_empty() {
            self.assign(now, rid, iid, sched);
        } else {
            state.committed[target_idx].push_back(rid);
            state.committed_total += 1;
            state.loads[target_idx] += 1;
        }
    }

    /// Hands the next committed request (if any) to a just-freed instance.
    /// Returns whether an assignment happened.
    fn serve_committed(
        &mut self,
        now: SimTime,
        iid: InstanceId,
        sched: &mut Scheduler<CloudEvent>,
    ) -> bool {
        let fid = iid.function();
        loop {
            let next = {
                let state = self.fstate_mut(fid);
                let queue = &mut state.committed[iid.idx as usize];
                match queue.pop_front() {
                    Some(rid) => {
                        state.committed_total -= 1;
                        state.loads[iid.idx as usize] -= 1;
                        Some(rid)
                    }
                    None => None,
                }
            };
            match next {
                // A commitment cancelled while queued: retire it and
                // offer the instance to the next one.
                Some(rid) if self.hot(rid).cancelled() => self.free_cancelled(rid),
                Some(rid) => {
                    self.assign(now, rid, iid, sched);
                    return true;
                }
                None => return false,
            }
        }
    }

    /// Assigns queued requests to idle instances while both exist.
    fn serve_queue(&mut self, now: SimTime, fid: FunctionId, sched: &mut Scheduler<CloudEvent>) {
        loop {
            let next = {
                let state = self.fstate_mut(fid);
                if state.queue.is_empty() {
                    None
                } else {
                    // Pop a valid idle instance (stack may hold stale
                    // entries from state changes since the push).
                    let mut found = None;
                    while let Some(idx) = state.idle_stack.pop() {
                        if state.instances[idx as usize].is_idle() {
                            found = Some(idx);
                            break;
                        }
                    }
                    found.map(|idx| {
                        let rid = state.queue.pop(now).expect("non-empty queue").item;
                        (rid, InstanceId { function: fid, idx })
                    })
                }
            };
            match next {
                // A queued request cancelled before being served: retire
                // it and return the instance for the next entry.
                Some((rid, iid)) if self.hot(rid).cancelled() => {
                    self.free_cancelled(rid);
                    self.fstate_mut(fid).idle_stack.push(iid.idx);
                }
                Some((rid, iid)) => self.assign(now, rid, iid, sched),
                None => break,
            }
        }
    }

    /// Applies the provider's scale-out policy after a queue change.
    fn scale(&mut self, now: SimTime, fid: FunctionId, sched: &mut Scheduler<CloudEvent>) {
        let snap = self.fstate(fid).snapshot();
        let policy = self.cfg.scaling.policy;
        let headroom = self
            .cfg
            .limits
            .max_instances_per_function
            .saturating_sub(self.fstate(fid).total_instances());
        let want = desired_spawns(&policy, snap).min(headroom);
        for _ in 0..want {
            self.spawn_instance(now, fid, sched);
        }
        // Arm the periodic scale controller if needed.
        if let ScalePolicy::Periodic { interval_ms, .. } = policy {
            let state = self.fstate_mut(fid);
            if !state.scale_tick_armed && !state.queue.is_empty() {
                state.scale_tick_armed = true;
                sched.schedule_in(
                    now,
                    SimTime::from_millis(interval_ms),
                    CloudEvent::ScaleTick(fid),
                );
            }
        }
    }

    fn on_scale_tick(&mut self, now: SimTime, fid: FunctionId, sched: &mut Scheduler<CloudEvent>) {
        let policy = self.cfg.scaling.policy;
        let snap = self.fstate(fid).snapshot();
        let headroom = self
            .cfg
            .limits
            .max_instances_per_function
            .saturating_sub(self.fstate(fid).total_instances());
        let add = periodic_step(&policy, snap).min(headroom);
        for _ in 0..add {
            self.spawn_instance(now, fid, sched);
        }
        let backlog = !self.fstate(fid).queue.is_empty();
        let state = self.fstate_mut(fid);
        if !backlog {
            state.scale_tick_armed = false;
        } else if let ScalePolicy::Periodic { interval_ms, .. } = policy {
            sched.schedule_in(now, SimTime::from_millis(interval_ms), CloudEvent::ScaleTick(fid));
        }
    }

    /// Starts one instance boot, returning its id.
    fn spawn_instance(
        &mut self,
        now: SimTime,
        fid: FunctionId,
        sched: &mut Scheduler<CloudEvent>,
    ) -> InstanceId {
        self.stats.spawns += 1;
        self.metrics.inc(metric::INSTANCES_SPAWNED);
        let decision_ms = self.cfg.scaling.decision_ms.sample(&mut self.rng_cold);
        let reserved = self.governor.reserve(now);
        let spawn_wait_ms = (reserved - now).as_millis();
        let fetch_at = reserved + SimTime::from_millis(decision_ms);

        let (image_mb, runtime, deployment) = {
            let state = self.fstate(fid);
            (state.image_mb, state.spec.runtime, state.spec.deployment)
        };
        let fetch = self.image_store.fetch(fid, image_mb, fetch_at);
        self.metrics.inc(if fetch.cache_warm {
            metric::IMAGE_CACHE_HITS
        } else {
            metric::IMAGE_CACHE_MISSES
        });
        let sandbox_ms = self.cfg.cold_start.sandbox_boot_ms.sample(&mut self.rng_cold);
        let boot_core_ms = if self.cfg.cold_start.fetch_overlaps_boot {
            sandbox_ms.max(fetch.latency_ms)
        } else {
            sandbox_ms + fetch.latency_ms
        };

        // Borrow the runtime model in place (it holds heap-backed `Dist`s,
        // so cloning it per spawn was measurable allocation churn); the
        // `self.cfg.runtimes` path is disjoint from `self.rng_cold`.
        let runtime_model = self.cfg.runtimes.model(runtime);
        let mut chunk_ms = 0.0;
        if deployment == DeploymentMethod::Container {
            if let Some(chunks) = &runtime_model.container_chunks {
                let count = self.rng_cold.range_u64(chunks.count_lo as u64, chunks.count_hi as u64);
                for _ in 0..count {
                    chunk_ms += chunks.chunk_latency_ms.sample(&mut self.rng_cold);
                }
            }
        }
        let runtime_init_ms = runtime_model.init_ms.sample(&mut self.rng_cold);
        let handler_init_ms = self.cfg.cold_start.handler_init_ms.sample(&mut self.rng_cold);

        let total_ms = spawn_wait_ms
            + decision_ms
            + boot_core_ms
            + chunk_ms
            + runtime_init_ms
            + handler_init_ms;
        let mut ready_at = now + SimTime::from_millis(total_ms);
        // Capacity outage: a boot finishing inside an outage window is
        // held (not failed) until the window closes. Pure clamp, no draws.
        if let Some(plan) = &self.fault_plan {
            if let Some(release_ms) = plan.outage_release_ms((ready_at - SimTime::ZERO).as_millis())
            {
                self.fault_stats.outage_deferrals += 1;
                ready_at = SimTime::from_millis(release_ms);
            }
        }

        let state = self.fstate_mut(fid);
        let iid = InstanceId { function: fid, idx: state.instances.len() as u32 };
        state.instances.push(Instance::boot(iid, now, ready_at));
        state.loads.push(0);
        state.committed.push(std::collections::VecDeque::new());
        state.usage.on_spawn();
        state.n_booting += 1;
        self.cold_breakdowns.insert(
            iid,
            ColdBreakdown {
                decision_ms,
                spawn_wait_ms,
                sandbox_ms,
                image_fetch_ms: fetch.latency_ms,
                chunk_fetch_ms: chunk_ms,
                runtime_init_ms,
                handler_init_ms,
                total_ms,
            },
        );
        sched.schedule_at(ready_at, CloudEvent::BootComplete(iid));
        iid
    }

    fn on_boot_complete(
        &mut self,
        now: SimTime,
        iid: InstanceId,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        self.governor.spawn_started();
        let fid = iid.function();

        // Failure injection: the boot may fail at completion and be
        // retried on a fresh instance, carrying its commitments along.
        let p_fail = self.cfg.cold_start.boot_failure_prob;
        if p_fail > 0.0 && self.rng_cold.bernoulli(p_fail) {
            self.stats.boot_failures += 1;
            self.metrics.inc(metric::BOOT_FAILURE_RETRIES);
            {
                let state = self.fstate_mut(fid);
                state.instances[iid.idx as usize].fail_boot();
                state.unlive(iid.idx);
                state.n_booting -= 1;
            }
            let replacement = self.spawn_instance(now, fid, sched);
            if let Some(rid) = self.sticky.remove(&iid) {
                self.sticky.insert(replacement, rid);
            }
            let orphaned = std::mem::take(&mut self.fstate_mut(fid).committed[iid.idx as usize]);
            let state = self.fstate_mut(fid);
            state.loads[replacement.idx as usize] += orphaned.len() as u32;
            state.committed[replacement.idx as usize].extend(orphaned);
            return;
        }

        {
            let state = self.fstate_mut(fid);
            state.instances[iid.idx as usize].boot_complete(now);
            state.usage.on_boot_complete(iid.idx as usize, now);
            state.n_booting -= 1;
            state.n_idle += 1;
            state.idle_stack.push(iid.idx);
        }
        if let Some(rid) = self.sticky.remove(&iid) {
            if self.hot(rid).cancelled() {
                // The request this instance was spawned for is gone:
                // retire it and let the instance serve the general pool.
                self.free_cancelled(rid);
            } else {
                // Serve the request this instance was spawned for. The
                // stale idle-stack entry is filtered out when popped
                // later.
                self.assign(now, rid, iid, sched);
                return;
            }
        }
        if self.committed_cap(fid).is_some() {
            if !self.serve_committed(now, iid, sched) {
                self.maybe_schedule_reap(now, iid, sched);
            }
            return;
        }
        self.serve_queue(now, fid, sched);
        self.maybe_schedule_reap(now, iid, sched);
    }

    /// Common assignment: instance goes busy, request timing recorded,
    /// compute scheduled.
    fn assign(
        &mut self,
        now: SimTime,
        rid: RequestId,
        iid: InstanceId,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        let fid = iid.function();
        let first_use = {
            let state = self.fstate_mut(fid);
            let inst = &mut state.instances[iid.idx as usize];
            let first_use = inst.served() == 0;
            inst.assign(rid);
            state.usage.on_assign(iid.idx as usize, now);
            state.n_idle -= 1;
            state.n_busy += 1;
            state.loads[iid.idx as usize] += 1;
            first_use
        };
        self.metrics.inc(if first_use { metric::COLD_STARTS } else { metric::WARM_STARTS });

        let shares = self.cfg.warm_path.shares;
        let memory_mb = self.functions[fid.index()].spec.memory_mb;
        let throttle = (self.cfg.limits.full_speed_memory_mb as f64 / memory_mb as f64).max(1.0);
        // Sample through a direct field borrow: `exec_ms` is a heap-backed
        // `Dist`, and this runs once per request, so the previous
        // per-request clone dominated the dispatch path's allocations.
        let exec_ms =
            self.functions[fid.index()].spec.exec_ms.sample(&mut self.rng_exec) * throttle;

        // Consumer-side payload retrieval for storage transfers (step ⑧).
        let xfer = self.cold(rid).xfer_in;
        let payload_get_ms = match xfer {
            Some(x) if x.mode == TransferMode::Storage => {
                self.payload_store.get_ms(x.payload_bytes)
            }
            _ => 0.0,
        };

        let cold_breakdown = first_use.then(|| self.cold_breakdowns.get(&iid).copied()).flatten();
        let wait_started = {
            let hot = self.hot_mut(rid);
            hot.instance = Some(iid);
            hot.assigned_at = Some(now);
            if first_use {
                hot.set_cold_start();
            }
            hot.wait_started
        };
        let cold = self.cold_mut(rid);
        let steer_ms = cold.warm_overhead_ms * shares.steer;
        let handling_ms = cold.warm_overhead_ms * shares.handling;
        cold.breakdown.steer_ms = steer_ms;
        cold.breakdown.handling_ms = handling_ms;
        cold.breakdown.payload_get_ms = payload_get_ms;
        cold.breakdown.exec_ms = exec_ms;
        if let Some(started) = wait_started {
            cold.breakdown.queue_wait_ms = (now - started).as_millis();
        }
        cold.breakdown.cold = cold_breakdown;

        // Record the transfer sample at the instant the payload is in the
        // consumer's hands (paper §V methodology). A fired join records
        // one sample per counted inbound edge instead of its aggregate
        // `xfer_in` (which only drives the cost model above).
        if let Some(meta) = self.join_meta.get(&rid.packed()) {
            let received = now + SimTime::from_millis(steer_ms + handling_ms + payload_get_ms);
            for edge in &meta.edges {
                self.transfers.push(TransferSample {
                    parent: edge.parent,
                    parent_tag: edge.parent_tag,
                    mode: edge.mode,
                    payload_bytes: edge.payload_bytes,
                    send_start: edge.send_start,
                    received,
                });
            }
        } else if let Some(x) = xfer {
            let received = now + SimTime::from_millis(steer_ms + handling_ms + payload_get_ms);
            self.transfers.push(TransferSample {
                parent: x.parent,
                parent_tag: x.parent_tag,
                mode: x.mode,
                payload_bytes: x.payload_bytes,
                send_start: x.send_start,
                received,
            });
        }

        if self.trace.is_some() {
            if let Some(started) = self.hot(rid).wait_started {
                self.emit_span(rid, span_tag::QUEUE_WAIT, started, now);
            }
            let t1 = now + SimTime::from_millis(steer_ms);
            let t2 = now + SimTime::from_millis(steer_ms + handling_ms);
            let t3 = now + SimTime::from_millis(steer_ms + handling_ms + payload_get_ms);
            let t4 = now + SimTime::from_millis(steer_ms + handling_ms + payload_get_ms + exec_ms);
            self.emit_span(rid, span_tag::STEER, now, t1);
            self.emit_span(rid, span_tag::HANDLING, t1, t2);
            if payload_get_ms > 0.0 {
                self.emit_span(rid, span_tag::PAYLOAD_GET, t2, t3);
            }
            self.emit_span(rid, span_tag::EXECUTION, t3, t4);
        }

        let compute_at =
            now + SimTime::from_millis(steer_ms + handling_ms + payload_get_ms + exec_ms);
        sched.schedule_at(compute_at, CloudEvent::ComputeDone(rid, iid));
    }

    fn on_compute_done(
        &mut self,
        now: SimTime,
        rid: RequestId,
        iid: InstanceId,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        if self.hot(rid).cancelled() {
            // Cancelled mid-execution: the cancel already freed the
            // instance; this stale event retires the slot. No chain hop
            // is spawned for a dead request.
            self.free_cancelled(rid);
            return;
        }
        let fid = self.hot(rid).function;
        let chain = self.fstate(fid).spec.chain;
        // Whether this function forks DAG out-edges after execution.
        // `dag_node` is `None` for every plain deployment, so DAG-free
        // runs take the exact legacy control flow.
        let dag_forks = chain.is_none()
            && self.fstate(fid).dag_node.is_some_and(|(dag, node)| {
                !self.dags[dag as usize].nodes[node as usize].out.is_empty()
            });
        // Mid-execution instance crash: the instance dies at the end of
        // user compute, the finished work is wasted, and the client gets
        // a 500. Injected only into chainless external executions —
        // crashing a producer mid-chain (or mid-fork) would orphan its
        // hops.
        if chain.is_none() && !dag_forks {
            if let Some(plan) = self.fault_plan.take() {
                let roll = plan.crash_p > 0.0
                    && self.cold(rid).origin.is_external()
                    && self.rng_faults.bernoulli(plan.crash_p);
                self.fault_plan = Some(plan);
                if roll {
                    self.crash_instance(now, rid, iid, sched);
                    return;
                }
            }
        }
        match chain {
            Some(chain) => {
                // Producer side of a chain hop (step ⑨): PUT (for storage
                // transfers), then invoke the consumer and wait for it.
                let chain_span = self.trace.as_mut().map(Tracer::alloc_id);
                let cold = self.cold_mut(rid);
                cold.chain_started = Some(now);
                cold.chain_span = chain_span;
                let tag = cold.tag;
                self.metrics.inc(metric::CHAIN_INVOCATIONS);
                let child_issue_at = match chain.mode {
                    TransferMode::Inline => now,
                    TransferMode::Storage => {
                        let put_ms = self.payload_store.put_ms(chain.payload_bytes);
                        now + SimTime::from_millis(put_ms)
                    }
                };
                let child = self.create_request(
                    chain.next,
                    RequestOrigin::Internal { parent: rid },
                    tag,
                    child_issue_at,
                    Some(XferInfo {
                        mode: chain.mode,
                        payload_bytes: chain.payload_bytes,
                        send_start: now,
                        parent: rid,
                        parent_tag: tag,
                    }),
                );
                self.stats.internal += 1;
                // Propagate the workflow root through compiled linear
                // segments so a downstream fork or join arrival keys the
                // right barrier. Pure bookkeeping: no draws, no events,
                // so legacy chain runs stay byte-identical.
                let root = self.wf_root_of(rid);
                self.cold_mut(child).wf_root = Some(root);
                self.cold_mut(rid).chain_child = Some(child);
                sched.schedule_at(child_issue_at, CloudEvent::FrontendArrive(child));
                // The producer instance stays busy until the child returns.
            }
            None if dag_forks => {
                let (dag, node) = self.fstate(fid).dag_node.expect("dag_forks checked");
                self.dag_fork(now, rid, dag, node, sched);
            }
            None => {
                sched.schedule_at(now, CloudEvent::ExecDone(rid, iid));
            }
        }
    }

    /// Producer side of a DAG fan-out (the multi-successor analogue of
    /// the chain arm above): one obligation per out-edge — a direct child
    /// request for plain successors, a [`CloudEvent::JoinArrive`] for
    /// fan-in successors — with the producer's instance held busy until
    /// every obligation resolves.
    fn dag_fork(
        &mut self,
        now: SimTime,
        rid: RequestId,
        dag: u32,
        node: u32,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        // Take the edge table out of `self` so edge payloads can be
        // sampled while spawning (the fault-plan take/restore idiom).
        let dags = std::mem::take(&mut self.dags);
        let edges = &dags[dag as usize].nodes[node as usize].out;
        let chain_span = self.trace.as_mut().map(Tracer::alloc_id);
        let tag = {
            let cold = self.cold_mut(rid);
            cold.chain_started = Some(now);
            cold.chain_span = chain_span;
            cold.dag_pending = edges.len() as u32;
            cold.tag
        };
        let root = self.wf_root_of(rid);
        let inline_cap = self.cfg.network.max_inline_payload;
        for edge in edges {
            let mut payload_bytes = edge.payload.sample(&mut self.rng_dag).round().max(1.0) as u64;
            if edge.mode == TransferMode::Inline {
                payload_bytes = payload_bytes.min(inline_cap);
            }
            let issue_at = match edge.mode {
                TransferMode::Inline => now,
                TransferMode::Storage => {
                    let put_ms = self.payload_store.put_ms(payload_bytes);
                    now + SimTime::from_millis(put_ms)
                }
            };
            self.metrics.inc(metric::DAG_INVOCATIONS);
            match edge.join {
                None => {
                    let child = self.create_request(
                        edge.target,
                        RequestOrigin::Internal { parent: rid },
                        tag,
                        issue_at,
                        Some(XferInfo {
                            mode: edge.mode,
                            payload_bytes,
                            send_start: now,
                            parent: rid,
                            parent_tag: tag,
                        }),
                    );
                    self.stats.internal += 1;
                    self.dag_counters.entry(edge.target.0).or_default().spawned += 1;
                    {
                        let hot = self.hot_mut(child);
                        hot.set_dag_spawn();
                    }
                    self.cold_mut(child).wf_root = Some(root);
                    self.dag_children.entry(rid.packed()).or_default().push(child);
                    sched.schedule_at(issue_at, CloudEvent::FrontendArrive(child));
                }
                Some((needed, total)) => {
                    self.pending_arrivals.insert(
                        (rid.packed(), edge.target.0),
                        PendingArrival {
                            mode: edge.mode,
                            payload_bytes,
                            send_start: now,
                            needed,
                            total,
                        },
                    );
                    sched.schedule_at(issue_at, CloudEvent::JoinArrive(rid, edge.target));
                }
            }
        }
        self.dags = dags;
    }

    /// A branch reaches a join barrier. Counted arrivals accumulate until
    /// the k-th fires the barrier, spawning the join request; later
    /// arrivals are stragglers whose producers resume immediately.
    fn on_join_arrive(
        &mut self,
        now: SimTime,
        parent: RequestId,
        jfid: FunctionId,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        let Some(pending) = self.pending_arrivals.remove(&(parent.packed(), jfid.0)) else {
            // The producer's slot was already torn down (its workflow was
            // cancelled and freed before this event fired).
            return;
        };
        if !self.is_live(parent) {
            return;
        }
        if self.hot(parent).cancelled() {
            self.free_cancelled(parent);
            return;
        }
        let root = self.wf_root_of(parent);
        let issued_at = self.hot(parent).issued_at;
        let parent_tag = self.cold(parent).tag;
        let branch_ms = (now - issued_at).as_millis();
        self.join_accums.entry(jfid.0).or_default().branch_ms.push(branch_ms);

        let key = (root.packed(), jfid.0);
        let barrier = self.join_barriers.entry(key).or_insert(JoinBarrier {
            needed: pending.needed,
            total: pending.total,
            arrived: 0,
            fired: false,
            min_issue: issued_at,
            arrivals: Vec::new(),
        });
        barrier.arrived += 1;
        if barrier.fired {
            // Straggler: the barrier fired without this branch; its
            // producer's obligation resolves right here instead of at the
            // join round trip.
            let done = barrier.arrived == barrier.total;
            if done {
                self.join_barriers.remove(&key);
            }
            let accum = self.join_accums.entry(jfid.0).or_default();
            accum.stragglers += 1;
            self.metrics.inc(metric::JOIN_STRAGGLERS);
            self.resolve_dag_obligation(now, parent, sched);
            return;
        }
        barrier.min_issue = barrier.min_issue.min(issued_at);
        barrier.arrivals.push(JoinArrival {
            parent,
            mode: pending.mode,
            payload_bytes: pending.payload_bytes,
            send_start: pending.send_start,
            parent_tag,
        });
        if barrier.arrived < barrier.needed {
            return;
        }
        // Fire: exactly once per (workflow, join) — the `fired` flag
        // turns every later arrival into a straggler.
        debug_assert!(!barrier.fired, "join barrier fired twice");
        barrier.fired = true;
        let min_issue = barrier.min_issue;
        let arrivals = std::mem::take(&mut barrier.arrivals);
        if barrier.arrived == barrier.total {
            self.join_barriers.remove(&key);
        }
        {
            let accum = self.join_accums.entry(jfid.0).or_default();
            accum.join_ms.push((now - min_issue).as_millis());
            accum.fired += 1;
        }
        self.metrics.inc(metric::JOINS_FIRED);

        // The join request aggregates its inbound payloads: storage mode
        // if any edge used storage, total bytes across counted edges. The
        // aggregate drives the consumer-side cost model; per-edge
        // transfer samples are recorded at assignment from the meta
        // table.
        let firing = arrivals.last().expect("barrier fired with no arrivals").parent;
        let agg_mode = if arrivals.iter().any(|a| a.mode == TransferMode::Storage) {
            TransferMode::Storage
        } else {
            TransferMode::Inline
        };
        let agg_bytes = arrivals.iter().map(|a| a.payload_bytes).sum();
        let send_start = arrivals.iter().map(|a| a.send_start).min().expect("non-empty");
        let tag = self.cold(firing).tag;
        let jrid = self.create_request(
            jfid,
            RequestOrigin::Internal { parent: firing },
            tag,
            now,
            Some(XferInfo {
                mode: agg_mode,
                payload_bytes: agg_bytes,
                send_start,
                parent: firing,
                parent_tag: tag,
            }),
        );
        self.stats.internal += 1;
        self.dag_counters.entry(jfid.0).or_default().spawned += 1;
        self.hot_mut(jrid).set_dag_spawn();
        self.cold_mut(jrid).wf_root = Some(root);
        self.dag_children.entry(firing.packed()).or_default().push(jrid);
        self.join_meta.insert(
            jrid.packed(),
            JoinMeta { parents: arrivals.iter().map(|a| a.parent).collect(), edges: arrivals },
        );
        sched.schedule_at(now, CloudEvent::FrontendArrive(jrid));
    }

    /// Resolves one DAG obligation of `parent`; when the last one drains
    /// the producer's chain wait ends and its instance moves on to the
    /// response path (the fan-out analogue of the chain resume in
    /// `on_completed`).
    fn resolve_dag_obligation(
        &mut self,
        now: SimTime,
        parent: RequestId,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        let remaining = {
            let cold = self.cold_mut(parent);
            debug_assert!(cold.dag_pending > 0, "resolving with no pending obligations");
            cold.dag_pending -= 1;
            cold.dag_pending
        };
        if remaining > 0 {
            return;
        }
        let chain_started = self.cold(parent).chain_started.expect("fork without a start time");
        self.cold_mut(parent).breakdown.chain_ms = (now - chain_started).as_millis();
        self.dag_children.remove(&parent.packed());
        if let Some(chain_id) = self.cold(parent).chain_span {
            let producer_root = self.cold(parent).root_span;
            if let Some(tracer) = self.trace.as_mut() {
                tracer.emit(SpanRecord {
                    span_id: chain_id,
                    parent: producer_root,
                    request: parent.packed(),
                    component: span_tag::CHAIN,
                    start: chain_started,
                    end: now,
                });
            }
        }
        let pinst = self.hot(parent).instance.expect("forking producer without instance");
        sched.schedule_at(now, CloudEvent::ExecDone(parent, pinst));
    }

    fn on_exec_done(
        &mut self,
        now: SimTime,
        rid: RequestId,
        iid: InstanceId,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        if self.hot(rid).cancelled() {
            // Cancelled between compute finishing and the response
            // leaving: the cancel already released the instance.
            self.free_cancelled(rid);
            return;
        }
        let fid = iid.function();
        {
            let state = self.fstate_mut(fid);
            state.instances[iid.idx as usize].release(rid, now);
            state.usage.on_release(iid.idx as usize, now);
            state.n_busy -= 1;
            state.n_idle += 1;
            state.loads[iid.idx as usize] -= 1;
            state.idle_stack.push(iid.idx);
        }

        let is_external = self.cold(rid).origin.is_external();
        let response_ms = self.cold(rid).warm_overhead_ms * self.cfg.warm_path.shares.response;
        let mut prop_back_ms = if is_external {
            self.cfg.network.prop_delay_ms.sample(&mut self.rng_net)
        } else {
            0.0
        };
        // Network brownout: inflate the return propagation when the
        // response is sampled inside an inflation window. Pure multiplier
        // on the baseline draw — no extra randomness consumed.
        if let Some(plan) = &self.fault_plan {
            prop_back_ms *= plan.inflation_factor((now - SimTime::ZERO).as_millis());
        }
        {
            let breakdown = &mut self.cold_mut(rid).breakdown;
            breakdown.response_ms = response_ms;
            breakdown.prop_back_ms = prop_back_ms;
        }
        if self.trace.is_some() {
            let r1 = now + SimTime::from_millis(response_ms);
            let r2 = now + SimTime::from_millis(response_ms + prop_back_ms);
            self.emit_span(rid, span_tag::RESPONSE, now, r1);
            if is_external {
                self.emit_span(rid, span_tag::PROPAGATION, r1, r2);
            }
        }
        sched.schedule_in(
            now,
            SimTime::from_millis(response_ms + prop_back_ms),
            CloudEvent::Completed(rid),
        );

        // The instance is free: serve more work or schedule a reap.
        if self.committed_cap(fid).is_some() {
            if !self.serve_committed(now, iid, sched) {
                self.maybe_schedule_reap(now, iid, sched);
            }
        } else {
            self.serve_queue(now, fid, sched);
            self.maybe_schedule_reap(now, iid, sched);
        }
    }

    fn on_completed(&mut self, now: SimTime, rid: RequestId, sched: &mut Scheduler<CloudEvent>) {
        if self.hot(rid).cancelled() {
            // A response for a cancelled request arrives dead: no
            // completion is recorded (the wasted work was booked at
            // cancel time) and the slot is retired.
            self.free_cancelled(rid);
            return;
        }
        {
            let hot = self.hot_mut(rid);
            assert!(!hot.done(), "request {rid} completed twice");
            hot.set_done();
        }
        let origin = self.cold(rid).origin;
        match origin {
            RequestOrigin::External => {
                self.stats.completed += 1;
                self.metrics.inc(metric::REQUESTS_COMPLETED);
                self.emit_root_span(rid, now, None);
                // The request is finished: copy both halves of its state
                // out and recycle the slot.
                let (hot, cold) = self.requests.free(rid);
                // Terminal-bucket accounting, once per request: a
                // submitted request is exactly one of shed / failed /
                // completed (cancels are booked at cancel time).
                if self.fault_plan.is_some() {
                    if hot.shed() {
                        self.fault_stats.shed += 1;
                    } else if cold.error.is_some() {
                        self.fault_stats.failed += 1;
                    } else {
                        self.fault_stats.completed += 1;
                    }
                }
                self.completions.push(Completion {
                    id: rid,
                    function: hot.function,
                    tag: cold.tag,
                    origin,
                    issued_at: hot.issued_at,
                    completed_at: now,
                    cold: hot.cold_start(),
                    breakdown: cold.breakdown,
                    error: cold.error,
                });
            }
            RequestOrigin::Internal { parent } => {
                if let Some(meta) = self.join_meta.remove(&rid.packed()) {
                    // A fired join's round trip is over: resume every
                    // branch producer that was counted into the barrier.
                    let chain_span = self.cold(parent).chain_span;
                    self.emit_root_span(rid, now, chain_span);
                    self.record_internal_completion(rid, now);
                    self.dag_counters.entry(self.hot(rid).function.0).or_default().completed += 1;
                    self.requests.free(rid);
                    for p in meta.parents {
                        self.resolve_dag_obligation(now, p, sched);
                    }
                } else if self.cold(parent).chain_child == Some(rid) {
                    // Resume the producer: its chain round-trip is over.
                    let pinst = self.hot(parent).instance.expect("parent without instance");
                    let chain_started =
                        self.cold(parent).chain_started.expect("parent without chain start");
                    {
                        let pcold = self.cold_mut(parent);
                        pcold.breakdown.chain_ms = (now - chain_started).as_millis();
                        pcold.chain_child = None;
                    }
                    let chain_span = self.cold(parent).chain_span;
                    if let Some(chain_id) = chain_span {
                        let producer_root = self.cold(parent).root_span;
                        if let Some(tracer) = self.trace.as_mut() {
                            tracer.emit(SpanRecord {
                                span_id: chain_id,
                                parent: producer_root,
                                request: parent.packed(),
                                component: span_tag::CHAIN,
                                start: chain_started,
                                end: now,
                            });
                        }
                    }
                    self.emit_root_span(rid, now, chain_span);
                    self.record_internal_completion(rid, now);
                    self.requests.free(rid);
                    sched.schedule_at(now, CloudEvent::ExecDone(parent, pinst));
                } else {
                    // A direct DAG fan-out child: one obligation of its
                    // forking producer resolves.
                    let chain_span = self.cold(parent).chain_span;
                    self.emit_root_span(rid, now, chain_span);
                    self.record_internal_completion(rid, now);
                    self.dag_counters.entry(self.hot(rid).function.0).or_default().completed += 1;
                    self.requests.free(rid);
                    self.resolve_dag_obligation(now, parent, sched);
                }
            }
        }
    }

    /// Records an internal completion when per-stage recording is on.
    /// Call before freeing the slot; recording draws no randomness and
    /// schedules no events, so enabling it cannot perturb results.
    fn record_internal_completion(&mut self, rid: RequestId, now: SimTime) {
        if !self.record_internal {
            return;
        }
        let hot = *self.hot(rid);
        let cold = *self.cold(rid);
        self.internal_completions.push(Completion {
            id: rid,
            function: hot.function,
            tag: cold.tag,
            origin: cold.origin,
            issued_at: hot.issued_at,
            completed_at: now,
            cold: hot.cold_start(),
            breakdown: cold.breakdown,
            error: cold.error,
        });
    }

    fn maybe_schedule_reap(
        &mut self,
        now: SimTime,
        iid: InstanceId,
        sched: &mut Scheduler<CloudEvent>,
    ) {
        let inst = &self.fstate(iid.function()).instances[iid.idx as usize];
        if inst.is_idle() {
            let epoch = inst.epoch();
            let timeout = self.cfg.keepalive.idle_timeout_ms.sample(&mut self.rng_cold);
            sched.schedule_in(
                now,
                SimTime::from_millis(timeout),
                CloudEvent::ReapCheck(iid, epoch),
            );
        }
    }

    fn on_reap_check(&mut self, now: SimTime, iid: InstanceId, epoch: u64) {
        let state = self.fstate_mut(iid.function());
        if state.instances[iid.idx as usize].try_reap(epoch) {
            state.unlive(iid.idx);
            state.usage.on_reap(iid.idx as usize, now);
            state.n_idle -= 1;
            self.stats.reaps += 1;
        }
    }
}

impl Cloud {
    fn on_telemetry_tick(&mut self, now: SimTime, sched: &mut Scheduler<CloudEvent>) {
        let Some(recorder) = &mut self.timeline else { return };
        for (i, state) in self.functions.iter().enumerate() {
            let queued = state.queue.len() as u32 + state.committed_total;
            recorder.samples.push(TimelineSample {
                at: now,
                function: FunctionId(i as u32),
                idle: state.n_idle,
                busy: state.n_busy,
                booting: state.n_booting,
                queued,
            });
            self.metrics.gauge(now, metric::QUEUE_DEPTH, i as u64, f64::from(queued));
            self.metrics.gauge(
                now,
                metric::INSTANCES_LIVE,
                i as u64,
                f64::from(state.n_idle + state.n_busy),
            );
            self.metrics.gauge(
                now,
                metric::INSTANCES_BOOTING,
                i as u64,
                f64::from(state.n_booting),
            );
        }
        // Keep ticking only while other work is pending, so runs that
        // drain to idle still terminate.
        if !sched.is_empty() {
            let interval = recorder.interval;
            sched.schedule_in(now, interval, CloudEvent::TelemetryTick);
        }
    }
}

/// Exact p99 by sorting: the straggler accumulators hold every sample, so
/// no sketch is needed (and the exactness keeps the bench pins stable).
fn exact_p99(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
    let idx = ((sorted.len() as f64) * 0.99).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

impl Model for Cloud {
    type Event = CloudEvent;

    fn handle(&mut self, now: SimTime, event: CloudEvent, sched: &mut Scheduler<CloudEvent>) {
        match event {
            CloudEvent::FrontendArrive(rid) => self.on_frontend_arrive(now, rid, sched),
            CloudEvent::RoutingDone(rid) => self.on_routing_done(now, rid, sched),
            CloudEvent::Enqueued(rid) => self.on_enqueued(now, rid, sched),
            CloudEvent::BootComplete(iid) => self.on_boot_complete(now, iid, sched),
            CloudEvent::ComputeDone(rid, iid) => self.on_compute_done(now, rid, iid, sched),
            CloudEvent::ExecDone(rid, iid) => self.on_exec_done(now, rid, iid, sched),
            CloudEvent::Completed(rid) => self.on_completed(now, rid, sched),
            CloudEvent::Cancel(rid) => self.on_cancel(now, rid, sched),
            CloudEvent::ReapCheck(iid, epoch) => self.on_reap_check(now, iid, epoch),
            CloudEvent::ScaleTick(fid) => self.on_scale_tick(now, fid, sched),
            CloudEvent::TelemetryTick => self.on_telemetry_tick(now, sched),
            CloudEvent::FaultStorm => self.on_fault_storm(now, sched),
            CloudEvent::JoinArrive(rid, fid) => self.on_join_arrive(now, rid, fid, sched),
        }
    }
}

/// A running serverless cloud: the public façade over [`Cloud`] plus its
/// event queue.
///
/// # Examples
///
/// ```
/// use faas_sim::cloud::CloudSim;
/// use faas_sim::spec::FunctionSpec;
/// use faas_sim::testutil::test_provider;
/// use simkit::time::SimTime;
///
/// let mut cloud = CloudSim::new(test_provider(), 42);
/// let f = cloud.deploy(FunctionSpec::builder("hello").build()).unwrap();
/// cloud.submit(f, 0, SimTime::ZERO);
/// cloud.run_until(SimTime::from_secs(10.0));
/// let done = cloud.drain_completions();
/// assert_eq!(done.len(), 1);
/// assert!(done[0].cold, "first request must cold start");
/// ```
#[derive(Debug)]
pub struct CloudSim {
    sim: Simulation<Cloud>,
    /// Reserved sequence numbers for the open submission window (if any):
    /// arrival events scheduled through `submit` consume these so
    /// interleaved submission reproduces an up-front pass's tie-breaking.
    seq_block: Option<SeqBlock>,
}

impl CloudSim {
    /// Creates a cloud for `cfg` with a deterministic `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: ProviderConfig, seed: u64) -> CloudSim {
        CloudSim { sim: Simulation::new(Cloud::new(cfg, seed)), seq_block: None }
    }

    /// Creates a cloud with an explicit event-queue backend. Results are
    /// bit-identical across backends (see [`simkit::engine::QueueKind`]);
    /// the calendar queue (the default) wins on large pending-event
    /// counts, the binary heap is kept as a comparison baseline.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn with_queue(
        cfg: ProviderConfig,
        seed: u64,
        queue: simkit::engine::QueueKind,
    ) -> CloudSim {
        CloudSim { sim: Simulation::with_queue(Cloud::new(cfg, seed), queue), seq_block: None }
    }

    /// Deploys a function; returns its id for [`CloudSim::submit`] and
    /// chain references.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] for invalid specs, dangling chain targets or
    /// over-limit inline payloads.
    pub fn deploy(&mut self, spec: FunctionSpec) -> Result<FunctionId, DeployError> {
        spec.validate().map_err(DeployError::InvalidSpec)?;
        let cloud = self.sim.model_mut();
        if let Some(chain) = &spec.chain {
            if chain.next.index() >= cloud.functions.len() {
                return Err(DeployError::UnknownChainTarget(chain.next));
            }
            if chain.mode == TransferMode::Inline
                && chain.payload_bytes > cloud.cfg.network.max_inline_payload
            {
                return Err(DeployError::InlinePayloadTooLarge {
                    requested: chain.payload_bytes,
                    limit: cloud.cfg.network.max_inline_payload,
                });
            }
        }
        let image_mb = cloud.cfg.runtimes.model(spec.runtime).base_image_mb + spec.extra_image_mb;
        let fid = FunctionId(cloud.functions.len() as u32);
        // Expected per-request service time: median execution plus the
        // in-instance shares of the warm overhead. Feeds load-dependent
        // commit caps (`CostAware`); everything it reads is fixed for the
        // function's lifetime, so the cap is computed once here.
        let service_estimate_ms = spec.exec_ms.median_exact().unwrap_or(0.0)
            + cloud.cfg.warm_path.overhead_ms.median_exact().unwrap_or(10.0)
                * (cloud.cfg.warm_path.shares.steer + cloud.cfg.warm_path.shares.handling);
        let function_commit_cap = commit_cap(&cloud.cfg.scaling.policy, service_estimate_ms);
        // Pre-size instance bookkeeping from the provider limit so the
        // first scale-out burst never reallocates; capped so deployments
        // under a generous limit stay cheap.
        let cap = cloud.cfg.limits.max_instances_per_function.min(128) as usize;
        cloud.functions.push(FunctionState {
            spec,
            instances: Vec::with_capacity(cap),
            queue: FifoQueue::new(),
            committed: Vec::with_capacity(cap),
            committed_total: 0,
            idle_stack: Vec::with_capacity(cap),
            loads: Vec::with_capacity(cap),
            n_idle: 0,
            n_busy: 0,
            n_booting: 0,
            scale_tick_armed: false,
            commit_cap: function_commit_cap,
            image_mb,
            usage: UsageTracker::default(),
            dag_node: None,
        });
        Ok(fid)
    }

    /// Deploys a compiled workflow: one function per plan node (named
    /// `{workflow}/{node}`), wired for fan-out/fan-in execution.
    ///
    /// Linear segments — a single out-edge into an in-degree-1 node with
    /// a constant payload — are lowered onto the legacy `ChainSpec` hot
    /// path, so a fully linear plan runs byte-identical to the same
    /// functions deployed with [`crate::spec::FunctionSpecBuilder::chain`].
    /// All other
    /// edges are installed in the DAG runtime table: the producer forks
    /// one obligation per edge at compute-done and stays busy until every
    /// obligation resolves (downstream completion, or the k-th arrival
    /// firing a join barrier).
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::InlinePayloadTooLarge`] when a constant
    /// inline edge payload exceeds the provider cap (sampled payloads are
    /// clamped to the cap at fork time instead), or any error from the
    /// per-node [`CloudSim::deploy`] calls.
    pub fn deploy_dag(&mut self, plan: &DagPlan) -> Result<DagDeployment, DeployError> {
        // Check every constant inline payload up front so a failed deploy
        // never leaves a partially-installed workflow behind.
        let limit = self.sim.model().cfg.network.max_inline_payload;
        for node in &plan.nodes {
            for e in &node.out {
                if e.mode == TransferMode::Inline {
                    if let Some(bytes) = e.constant_payload() {
                        if bytes > limit {
                            return Err(DeployError::InlinePayloadTooLarge {
                                requested: bytes,
                                limit,
                            });
                        }
                    }
                }
            }
        }
        // A node's only out-edge compiles onto the legacy chain path when
        // the target cannot be a barrier and the payload needs no draw.
        let chain_target = |i: usize| -> Option<usize> {
            let node = &plan.nodes[i];
            if node.out.len() != 1 {
                return None;
            }
            let e = &node.out[0];
            if plan.nodes[e.to].in_degree != 1 {
                return None;
            }
            e.constant_payload().map(|_| e.to)
        };
        // Deploy in reverse topological order so every chain target
        // already exists when its producer's spec is validated.
        let mut fids: Vec<FunctionId> = vec![FunctionId(u32::MAX); plan.nodes.len()];
        for &i in plan.topo.iter().rev() {
            let node = &plan.nodes[i];
            let mut builder = FunctionSpec::builder(format!("{}/{}", plan.name, node.name))
                .runtime(node.runtime)
                .deployment(node.deployment)
                .memory_mb(node.memory_mb)
                .extra_image_mb(node.extra_image_mb)
                .exec_ms(node.exec_ms.clone());
            if let Some(to) = chain_target(i) {
                let e = &node.out[0];
                let bytes = e.constant_payload().expect("chain_target checked constant");
                builder = builder.chain(fids[to], e.mode, bytes);
            }
            fids[i] = self.deploy(builder.build())?;
        }
        let nodes = plan
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let out = if chain_target(i).is_some() {
                    Vec::new()
                } else {
                    node.out
                        .iter()
                        .map(|e| {
                            let tgt = &plan.nodes[e.to];
                            RuntimeEdge {
                                target: fids[e.to],
                                mode: e.mode,
                                payload: e.payload.clone(),
                                join: tgt.is_join().then_some((tgt.join_k, tgt.in_degree)),
                            }
                        })
                        .collect()
                };
                RuntimeNode { out }
            })
            .collect();
        let cloud = self.sim.model_mut();
        let dag_idx = cloud.dags.len() as u32;
        cloud.dags.push(InstalledDag { nodes });
        for (i, &fid) in fids.iter().enumerate() {
            cloud.functions[fid.index()].dag_node = Some((dag_idx, i as u32));
        }
        Ok(DagDeployment { root: fids[plan.root], functions: fids })
    }

    /// Straggler-amplification statistics per join function, over every
    /// barrier firing so far. Empty when no workflow with a join ran.
    pub fn dag_join_stats(&self) -> Vec<JoinStats> {
        let cloud = self.sim.model();
        cloud
            .join_accums
            .iter()
            .map(|(&fid, acc)| {
                let branch_p99_ms = exact_p99(&acc.branch_ms);
                let join_p99_ms = exact_p99(&acc.join_ms);
                JoinStats {
                    function: FunctionId(fid),
                    fired: acc.fired,
                    stragglers: acc.stragglers,
                    branch_samples: acc.branch_ms.len() as u64,
                    branch_p99_ms,
                    join_p99_ms,
                    amplification: if branch_p99_ms > 0.0 {
                        join_p99_ms / branch_p99_ms
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }

    /// Per-function conservation counters for DAG-engine-spawned requests
    /// (fan-out children and fired joins). Every spawned request must end
    /// up completed or cancelled by the time the run drains.
    pub fn dag_node_counters(&self) -> Vec<(FunctionId, DagNodeCounters)> {
        self.sim.model().dag_counters.iter().map(|(&f, &c)| (FunctionId(f), c)).collect()
    }

    /// Enables recording of *internal* completions (chain hops, fan-out
    /// children, fired joins) for per-stage reporting. Off by default:
    /// the main completion stream stays external-only either way, and
    /// recording draws no randomness, so toggling this cannot change
    /// simulation results.
    pub fn record_internal_completions(&mut self, on: bool) {
        self.sim.model_mut().record_internal = on;
    }

    /// Drains internal completions recorded since the last drain (see
    /// [`CloudSim::record_internal_completions`]).
    pub fn drain_internal_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.sim.model_mut().internal_completions)
    }

    /// Whether every DAG side table has drained — true at idle for any
    /// run in which all workflows finished or were cancelled. Leak check
    /// for the invariant tests.
    pub fn dag_tables_empty(&self) -> bool {
        let cloud = self.sim.model();
        cloud.join_barriers.is_empty()
            && cloud.join_meta.is_empty()
            && cloud.dag_children.is_empty()
            && cloud.pending_arrivals.is_empty()
    }

    /// Submits an external invocation of `function` issued at `at`,
    /// tagged with a caller-chosen `tag`. Returns the request id.
    ///
    /// # Panics
    ///
    /// Panics if `function` was not deployed or `at` is in the simulated
    /// past.
    pub fn submit(&mut self, function: FunctionId, tag: u64, at: SimTime) -> RequestId {
        assert!(
            function.index() < self.sim.model().functions.len(),
            "submit to unknown function {function}"
        );
        let cloud = self.sim.model_mut();
        cloud.stats.submitted += 1;
        cloud.metrics.inc(metric::REQUESTS_SUBMITTED);
        if cloud.fault_plan.is_some() {
            cloud.fault_stats.submitted += 1;
        }
        let mut prop_ms = match &mut cloud.submission_rng {
            Some(rng) => cloud.cfg.network.prop_delay_ms.sample(rng),
            None => cloud.cfg.network.prop_delay_ms.sample(&mut cloud.rng_net),
        };
        if let Some(plan) = &cloud.fault_plan {
            prop_ms *= plan.inflation_factor((at - SimTime::ZERO).as_millis());
        }
        let rid = cloud.create_request(function, RequestOrigin::External, tag, at, None);
        cloud.cold_mut(rid).breakdown.prop_out_ms = prop_ms;
        cloud.emit_span(rid, span_tag::PROPAGATION, at, at + SimTime::from_millis(prop_ms));
        let arrive_at = at + SimTime::from_millis(prop_ms);
        match self.seq_block.as_mut() {
            Some(block) => {
                self.sim.schedule_at_with_seq(
                    arrive_at,
                    block.take(),
                    CloudEvent::FrontendArrive(rid),
                );
            }
            None => self.sim.schedule_at(arrive_at, CloudEvent::FrontendArrive(rid)),
        }
        rid
    }

    /// Opens a *submission window* for `expected` upcoming external
    /// submissions that will be interleaved with event processing (the
    /// streaming workload driver's shape).
    ///
    /// Two sources of divergence from an up-front submission pass are
    /// neutralized so an interleaved run stays bit-identical to it:
    ///
    /// 1. **RNG order** — `submit` draws a propagation delay from
    ///    `rng_net`. Up-front submission performs all those draws before
    ///    any event handler touches the stream; interleaved submission
    ///    would mingle them with the handlers' draws. The window clones
    ///    the stream for submissions and fast-forwards the live one past
    ///    the `expected` draws.
    /// 2. **Tie-breaking** — events scheduled at equal timestamps pop in
    ///    schedule order (sequence numbers). The window reserves a block
    ///    of `expected` sequence numbers up front; each `submit` consumes
    ///    the next one, stamping arrivals exactly as an up-front pass
    ///    would have.
    ///
    /// Submitting more than `expected` requests while the window is open
    /// panics; submitting fewer is fine (finite arrival schedules), the
    /// leftover draws and sequence numbers are simply abandoned at
    /// [`CloudSim::close_submission_window`].
    ///
    /// # Panics
    ///
    /// Panics if a window is already open.
    pub fn open_submission_window(&mut self, expected: usize) {
        let cloud = self.sim.model_mut();
        assert!(cloud.submission_rng.is_none(), "submission window already open");
        let window = cloud.rng_net.clone();
        for _ in 0..expected {
            let _ = cloud.cfg.network.prop_delay_ms.sample(&mut cloud.rng_net);
        }
        cloud.submission_rng = Some(window);
        self.seq_block = Some(self.sim.reserve_seq_block(expected as u64));
    }

    /// Closes the submission window opened by
    /// [`CloudSim::open_submission_window`]; `submit` reverts to drawing
    /// from the live network stream. Idempotent.
    pub fn close_submission_window(&mut self) {
        self.sim.model_mut().submission_rng = None;
        self.seq_block = None;
    }

    /// Advances the simulation until `horizon` (inclusive).
    pub fn run_until(&mut self, horizon: SimTime) {
        self.sim.run_until(horizon);
    }

    /// Runs the simulation until no events remain.
    ///
    /// Note: keep-alive reap checks count as events, so this runs past the
    /// last idle timeout.
    pub fn run_to_idle(&mut self) {
        self.sim.run();
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Removes and returns finished external completions.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.sim.model_mut().completions)
    }

    /// Moves finished external completions into `out`, preserving order.
    /// Unlike [`CloudSim::drain_completions`] this allocates nothing: the
    /// caller's buffer is reused across rounds (its capacity survives a
    /// `clear`), which is what the workload driver's drain loop wants.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.sim.model_mut().completions);
    }

    /// Removes and returns recorded cross-function transfer samples.
    pub fn drain_transfers(&mut self) -> Vec<TransferSample> {
        std::mem::take(&mut self.sim.model_mut().transfers)
    }

    /// Moves recorded transfer samples into `out`, preserving order; the
    /// allocation-free counterpart of [`CloudSim::drain_transfers`].
    pub fn drain_transfers_into(&mut self, out: &mut Vec<TransferSample>) {
        out.append(&mut self.sim.model_mut().transfers);
    }

    /// Pre-sizes hot-path buffers for a workload of `expected` external
    /// requests: the request table, the completion buffer, and the event
    /// heap (every pending external arrival occupies a heap slot until it
    /// is dispatched, so a submitted-up-front workload peaks near
    /// `expected` pending events).
    pub fn reserve_requests(&mut self, expected: usize) {
        self.reserve_submissions(expected);
        self.sim.model_mut().completions.reserve(expected);
    }

    /// Announces `expected` upcoming submissions to the event queue
    /// *without* pre-sizing the request slab or completion buffer — the
    /// sizing hint streaming drivers want. Besides reserving capacity,
    /// the hint lets the adaptive backend promote to the calendar queue
    /// once, up front, instead of re-discovering the backlog at the
    /// promotion threshold mid-run.
    pub fn reserve_event_hint(&mut self, expected: usize) {
        self.sim.reserve_events(expected + expected / 4);
    }

    /// Like [`CloudSim::reserve_requests`] but without pre-sizing the
    /// completion buffer — for streaming drivers that drain completions in
    /// bounded slices, where the buffer never holds more than one slice's
    /// worth and reserving `expected` would itself be the O(n) allocation
    /// the driver is avoiding.
    pub fn reserve_submissions(&mut self, expected: usize) {
        let cloud = self.sim.model_mut();
        cloud.requests.reserve(expected);
        self.sim.reserve_events(expected + expected / 4);
    }

    /// Requests cancellation of an in-flight external request. The
    /// cancel takes effect at the next event boundary of the current
    /// simulated time: an executing attempt frees its instance there, a
    /// queued one is dropped when an instance would have picked it up,
    /// and an in-flight chain hop is cancelled along with its producer.
    /// Cancelled requests never yield a [`Completion`]; the instance
    /// time they consumed is booked in [`CloudSim::cancel_stats`].
    /// Cancelling an already-completed (or already-cancelled) request is
    /// a no-op, so callers may race cancels against completions freely.
    pub fn cancel(&mut self, rid: RequestId) {
        let now = self.sim.now();
        self.sim.schedule_at(now, CloudEvent::Cancel(rid));
    }

    /// Aggregate counters.
    pub fn stats(&self) -> CloudStats {
        self.sim.model().stats
    }

    /// Wasted-work accounting for cancelled requests (see
    /// [`CloudSim::cancel`]).
    pub fn cancel_stats(&self) -> CancelStats {
        self.sim.model().cancel_stats
    }

    /// Installs a compiled fault schedule. Inert plans (compiled from
    /// [`faults::FaultSpec::none`] or an all-zero composition) are
    /// silently skipped, so a faults-off run stays byte-identical to a
    /// build without this call. Call before submitting work; the plan
    /// applies for the rest of the run.
    pub fn install_faults(&mut self, plan: faults::FaultPlan) {
        if plan.is_inert() {
            return;
        }
        let first_storm = {
            let cloud = self.sim.model_mut();
            let at = plan.storm.map(|s| {
                let gap_ms = -s.mean_gap_ms * cloud.rng_faults.next_f64_open().ln();
                SimTime::from_millis(s.start_ms + gap_ms)
            });
            cloud.fault_plan = Some(plan);
            at
        };
        if let Some(at) = first_storm {
            self.sim.schedule_at(at, CloudEvent::FaultStorm);
        }
    }

    /// Fault-injection and degradation counters (all zero when no fault
    /// plan is installed).
    pub fn fault_stats(&self) -> faults::FaultStats {
        self.sim.model().fault_stats
    }

    /// Whether a (non-inert) fault plan is installed.
    pub fn faults_installed(&self) -> bool {
        self.sim.model().fault_plan.is_some()
    }

    /// Number of live (idle + busy) instances of `function`.
    pub fn live_instances(&self, function: FunctionId) -> u32 {
        let state = &self.sim.model().functions[function.index()];
        state.n_idle + state.n_busy
    }

    /// Enables periodic fleet telemetry: every `interval` the simulator
    /// records one [`TimelineSample`] per deployed function (instances by
    /// state, queued requests). Sampling stops automatically when the
    /// event queue drains.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn enable_timeline(&mut self, interval: SimTime) {
        assert!(!interval.is_zero(), "telemetry interval must be positive");
        let start = self.sim.now() + interval;
        self.sim.model_mut().timeline = Some(TimelineRecorder { interval, samples: Vec::new() });
        self.sim.schedule_at(start, CloudEvent::TelemetryTick);
    }

    /// Telemetry samples recorded so far (empty unless
    /// [`CloudSim::enable_timeline`] was called).
    pub fn timeline(&self) -> &[TimelineSample] {
        self.sim.model().timeline.as_ref().map_or(&[], |recorder| recorder.samples.as_slice())
    }

    /// Resource usage of `function`'s fleet, accounted up to the current
    /// simulated time (Obs 7's cost axis: active-instance seconds and
    /// billed busy time).
    pub fn resource_usage(&self, function: FunctionId) -> ResourceUsage {
        self.sim.model().functions[function.index()].usage.snapshot(self.sim.now())
    }

    /// Image-store statistics (cache hit counters etc.).
    pub fn image_store_stats(&self) -> crate::storage::ImageStoreStats {
        self.sim.model().image_store.stats()
    }

    /// Enables span tracing into a bounded in-memory ring holding the
    /// newest `capacity` spans (see [`RingCollector`]). Call before
    /// submitting work: requests created earlier have no root span and
    /// are not traced.
    ///
    /// Tracing draws no randomness and schedules no events, so enabling
    /// it does not change simulation results.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.set_trace_sink(Box::new(RingCollector::with_capacity(capacity)));
    }

    /// Directs emitted spans into a custom [`TraceSink`].
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sim.model_mut().trace = Some(Tracer::new(sink));
    }

    /// Removes and returns spans buffered by the trace sink. Empty when
    /// tracing is off or the sink forwards spans elsewhere.
    pub fn drain_spans(&mut self) -> Vec<SpanRecord> {
        self.sim.model_mut().trace.as_mut().map_or_else(Vec::new, Tracer::drain)
    }

    /// The metrics registry: always-on lifecycle counters (see [`metric`])
    /// plus gauges sampled on telemetry ticks when
    /// [`CloudSim::enable_timeline`] is active.
    pub fn metrics(&self) -> &Metrics {
        &self.sim.model().metrics
    }

    /// Occupancy counters of the request slab. `high_water` bounds the
    /// peak simultaneously-live request count — for a streaming driver
    /// this should stay O(slice + active requests) no matter how many
    /// invocations the run submits in total.
    pub fn request_slab_stats(&self) -> RequestSlabStats {
        self.sim.model().requests.stats()
    }

    /// Self-correction counters of the calendar event queue, or `None`
    /// when the cloud runs on the binary-heap backend.
    pub fn queue_stats(&self) -> Option<CalQueueStats> {
        self.sim.queue_stats()
    }

    /// How many times the adaptive event queue promoted its heap to the
    /// calendar backend (0 on fixed backends; at most 1 per run).
    pub fn promotions(&self) -> u64 {
        self.sim.promotions()
    }

    /// Enables per-event cost profiling: every subsequent event dispatch
    /// is timed and bucketed by [`CloudEvent`] class. Profiling observes
    /// wall-clock time only — it draws no randomness and schedules no
    /// events, so a profiled run is bit-identical to an unprofiled one.
    /// Idempotent.
    pub fn enable_event_profiling(&mut self) {
        self.sim.enable_event_profiling();
    }

    /// The cost profile accumulated so far, or `None` when
    /// [`CloudSim::enable_event_profiling`] was never called.
    pub fn event_profile(&self) -> Option<&simkit::profile::EventProfile> {
        self.sim.event_profile()
    }

    /// Folds the per-event cost profile into the metrics registry under
    /// the [`metric::PROFILE_COUNT`] / [`metric::PROFILE_NS`] /
    /// [`metric::PROFILE_LOOP_NS`] names. No-op when profiling is off.
    /// Call once, after the run finishes: the profile holds lifetime
    /// totals, so calling this repeatedly double-counts.
    pub fn record_profile_metrics(&mut self) {
        let Some(profile) = self.sim.event_profile() else { return };
        debug_assert_eq!(profile.names.len(), metric::PROFILE_NS.len());
        let count = profile.count.clone();
        let ns = profile.ns.clone();
        let loop_ns = profile.loop_ns;
        let metrics = &mut self.sim.model_mut().metrics;
        for i in 0..metric::PROFILE_NS.len() {
            metrics.add(metric::PROFILE_COUNT[i], count[i]);
            metrics.add(metric::PROFILE_NS[i], ns[i]);
        }
        metrics.add(metric::PROFILE_LOOP_NS, loop_ns);
    }

    /// Folds the request-slab counters and (when on the calendar backend)
    /// the event-queue self-correction counters into the metrics
    /// registry under the `metric::REQUEST_SLOTS_*` / `metric::CALQUEUE_*`
    /// names. Call once, after the run finishes: the counters are
    /// lifetime totals, so calling this repeatedly double-counts.
    pub fn record_queue_metrics(&mut self) {
        let slab = self.sim.model().requests.stats();
        let queue = self.sim.queue_stats();
        let metrics = &mut self.sim.model_mut().metrics;
        metrics.add(metric::REQUEST_SLOTS_ALLOCATED, slab.slots_allocated);
        metrics.add(metric::REQUEST_SLOTS_REUSED, slab.slots_reused);
        metrics.add(metric::REQUEST_SLOTS_HIGH_WATER, slab.high_water);
        if let Some(stats) = queue {
            metrics.add(metric::CALQUEUE_REBUILDS, stats.rebuilds);
            metrics.add(metric::CALQUEUE_HUNT_FALLBACKS, stats.hunt_fallbacks);
            metrics.add(metric::CALQUEUE_OVERCROWD_REBUILDS, stats.overcrowd_rebuilds);
        }
    }

    /// The provider configuration this cloud runs.
    pub fn config(&self) -> &ProviderConfig {
        &self.sim.model().cfg
    }
}

#[cfg(test)]
mod tests {
    use simkit::profile::EventClass;

    use super::metric;
    use crate::events::CloudEvent;

    /// The profiler metric arrays must stay parallel to
    /// `CloudEvent::CLASS_NAMES`: `record_profile_metrics` folds profile
    /// slot `i` into `PROFILE_*[i]`, so a reorder would silently
    /// misattribute costs.
    #[test]
    fn profile_metric_names_match_event_classes() {
        assert_eq!(metric::PROFILE_NS.len(), CloudEvent::CLASS_NAMES.len());
        assert_eq!(metric::PROFILE_COUNT.len(), CloudEvent::CLASS_NAMES.len());
        for (i, class) in CloudEvent::CLASS_NAMES.iter().enumerate() {
            assert_eq!(metric::PROFILE_NS[i], format!("profile_ns_{class}"));
            assert_eq!(metric::PROFILE_COUNT[i], format!("profile_count_{class}"));
        }
    }

    use simkit::dist::Dist;
    use simkit::time::SimTime;

    use super::CloudSim;
    use crate::dag::{DagNodeSpec, DagSpec, JoinSpec};
    use crate::spec::FunctionSpec;
    use crate::testutil::test_provider;
    use crate::types::TransferMode;

    /// Runs `sim` forward in 50 ms steps until at least `depth` request
    /// slots are simultaneously live (root plus internal hops), so a
    /// cancel lands mid-flight at a known cascade depth.
    fn run_until_depth(sim: &mut CloudSim, depth: u64) {
        let mut t = 0.0;
        while sim.request_slab_stats().live < depth {
            t += 50.0;
            assert!(t < 60_000.0, "never reached {depth} simultaneously live requests");
            sim.run_until(SimTime::from_millis(t));
        }
    }

    /// Regression for the cancellation cascade: a ≥3-deep chain cancelled
    /// mid-flight must free every hop, not just the first `chain_child`.
    #[test]
    fn deep_chain_cancel_mid_flight_frees_all_hops() {
        let mut sim = CloudSim::new(test_provider(), 7);
        // Deploy tail-first so each producer can reference its successor.
        let d = sim.deploy(FunctionSpec::builder("d").exec_constant_ms(400.0).build()).unwrap();
        let c = sim
            .deploy(
                FunctionSpec::builder("c")
                    .exec_constant_ms(5.0)
                    .chain(d, TransferMode::Inline, 1024)
                    .build(),
            )
            .unwrap();
        let b = sim
            .deploy(
                FunctionSpec::builder("b")
                    .exec_constant_ms(5.0)
                    .chain(c, TransferMode::Inline, 1024)
                    .build(),
            )
            .unwrap();
        let a = sim
            .deploy(
                FunctionSpec::builder("a")
                    .exec_constant_ms(5.0)
                    .chain(b, TransferMode::Inline, 1024)
                    .build(),
            )
            .unwrap();
        let rid = sim.submit(a, 0, SimTime::ZERO);
        // Chain depth 3: a blocked on b blocked on c blocked on d.
        run_until_depth(&mut sim, 4);
        sim.cancel(rid);
        sim.run_to_idle();
        assert_eq!(sim.request_slab_stats().live, 0, "cancel cascade leaked request slots");
        assert_eq!(sim.cancel_stats().cancelled, 4, "root plus all three hops must cancel");
        assert!(sim.drain_completions().is_empty(), "cancelled chain must not complete");
    }

    fn diamond() -> DagSpec {
        DagSpec::new("diamond")
            .node(DagNodeSpec::new("split").exec_ms(Dist::constant(5.0)))
            .node(DagNodeSpec::new("left").exec_ms(Dist::constant(10.0)))
            .node(DagNodeSpec::new("right").exec_ms(Dist::constant(30.0)))
            .node(DagNodeSpec::new("merge").exec_ms(Dist::constant(5.0)))
            .edge("split", "left", TransferMode::Inline, Dist::constant(2048.0))
            .edge("split", "right", TransferMode::Inline, Dist::constant(2048.0))
            .edge("left", "merge", TransferMode::Inline, Dist::constant(1024.0))
            .edge("right", "merge", TransferMode::Inline, Dist::constant(1024.0))
    }

    /// End-to-end fan-out/fan-in: one submission to the diamond's root
    /// yields one external completion, one barrier firing, clean tables
    /// and balanced conservation counters.
    #[test]
    fn fan_out_join_completes_and_drains() {
        let mut sim = CloudSim::new(test_provider(), 11);
        let plan = diamond().compile().unwrap();
        let dep = sim.deploy_dag(&plan).unwrap();
        sim.record_internal_completions(true);
        sim.submit(dep.root, 0, SimTime::ZERO);
        sim.run_to_idle();

        let done = sim.drain_completions();
        assert_eq!(done.len(), 1, "exactly one external completion");
        assert!(done[0].is_ok());
        assert!(done[0].breakdown.chain_ms > 0.0, "fork round trip must be attributed");

        // left, right, and the fired merge ran as internal requests.
        let internal = sim.drain_internal_completions();
        assert_eq!(internal.len(), 3);
        assert_eq!(sim.stats().internal, 3);

        let joins = sim.dag_join_stats();
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].function, dep.functions[3]);
        assert_eq!(joins[0].fired, 1);
        assert_eq!(joins[0].stragglers, 0);
        assert_eq!(joins[0].branch_samples, 2);
        assert!(joins[0].join_p99_ms >= joins[0].branch_p99_ms);

        for (_, counters) in sim.dag_node_counters() {
            assert_eq!(counters.spawned, counters.completed + counters.cancelled);
            assert_eq!(counters.cancelled, 0);
        }
        assert!(sim.dag_tables_empty(), "DAG side tables must drain at idle");
        assert_eq!(sim.request_slab_stats().live, 0);
    }

    /// A k-of-n quorum join fires at the k-th arrival and counts the
    /// remaining branches as stragglers; their producers still resolve.
    #[test]
    fn k_of_n_join_counts_stragglers() {
        let spec = DagSpec::new("quorum")
            .node(DagNodeSpec::new("scatter").exec_ms(Dist::constant(5.0)))
            .node(DagNodeSpec::new("w1").exec_ms(Dist::constant(10.0)))
            .node(DagNodeSpec::new("w2").exec_ms(Dist::constant(20.0)))
            .node(DagNodeSpec::new("w3").exec_ms(Dist::constant(500.0)))
            .node(
                DagNodeSpec::new("gather")
                    .exec_ms(Dist::constant(5.0))
                    .join(JoinSpec::KOfN { k: 2 }),
            )
            .edge("scatter", "w1", TransferMode::Inline, Dist::constant(1024.0))
            .edge("scatter", "w2", TransferMode::Inline, Dist::constant(1024.0))
            .edge("scatter", "w3", TransferMode::Inline, Dist::constant(1024.0))
            .edge("w1", "gather", TransferMode::Inline, Dist::constant(512.0))
            .edge("w2", "gather", TransferMode::Inline, Dist::constant(512.0))
            .edge("w3", "gather", TransferMode::Inline, Dist::constant(512.0));
        let mut sim = CloudSim::new(test_provider(), 13);
        let dep = sim.deploy_dag(&spec.compile().unwrap()).unwrap();
        sim.submit(dep.root, 0, SimTime::ZERO);
        sim.run_to_idle();

        let done = sim.drain_completions();
        assert_eq!(done.len(), 1);
        assert!(done[0].is_ok());
        let joins = sim.dag_join_stats();
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].fired, 1, "quorum barrier fires exactly once");
        assert_eq!(joins[0].stragglers, 1, "the slow branch arrives after the fire");
        assert_eq!(joins[0].branch_samples, 3);
        assert!(sim.dag_tables_empty());
        assert_eq!(sim.request_slab_stats().live, 0);
    }

    /// Cancelling a workflow root mid-flight retires every branch, join
    /// barrier and pending arrival — nothing leaks, counters balance.
    #[test]
    fn dag_cancel_cascades_through_branches_and_barriers() {
        let spec = DagSpec::new("wide")
            .node(DagNodeSpec::new("fork").exec_ms(Dist::constant(5.0)))
            .node(DagNodeSpec::new("s1").exec_ms(Dist::constant(2_000.0)))
            .node(DagNodeSpec::new("s2").exec_ms(Dist::constant(2_000.0)))
            .node(DagNodeSpec::new("s3").exec_ms(Dist::constant(2_000.0)))
            .node(DagNodeSpec::new("join").exec_ms(Dist::constant(5.0)))
            .edge("fork", "s1", TransferMode::Inline, Dist::constant(1024.0))
            .edge("fork", "s2", TransferMode::Inline, Dist::constant(1024.0))
            .edge("fork", "s3", TransferMode::Inline, Dist::constant(1024.0))
            .edge("s1", "join", TransferMode::Inline, Dist::constant(512.0))
            .edge("s2", "join", TransferMode::Inline, Dist::constant(512.0))
            .edge("s3", "join", TransferMode::Inline, Dist::constant(512.0));
        let mut sim = CloudSim::new(test_provider(), 17);
        let dep = sim.deploy_dag(&spec.compile().unwrap()).unwrap();
        let rid = sim.submit(dep.root, 0, SimTime::ZERO);
        // Root plus three executing branches in flight.
        run_until_depth(&mut sim, 4);
        sim.cancel(rid);
        sim.run_to_idle();

        assert_eq!(sim.request_slab_stats().live, 0, "cancel leaked request slots");
        assert!(sim.dag_tables_empty(), "cancel leaked barrier or arrival state");
        assert!(sim.drain_completions().is_empty());
        for (_, counters) in sim.dag_node_counters() {
            assert_eq!(counters.spawned, counters.completed + counters.cancelled);
        }
        assert_eq!(sim.cancel_stats().cancelled, 4, "root and all three branches cancel");
    }

    /// A fully linear plan compiles every hop onto the legacy chain path:
    /// no DAG spawns, no barriers, identical hop accounting.
    #[test]
    fn linear_plan_lowers_to_legacy_chain() {
        use crate::dag::DagPlan;
        let plan = DagPlan::linear("line", 3, TransferMode::Inline, 1024, Dist::constant(5.0));
        let mut sim = CloudSim::new(test_provider(), 19);
        let dep = sim.deploy_dag(&plan).unwrap();
        sim.submit(dep.root, 0, SimTime::ZERO);
        sim.run_to_idle();
        let done = sim.drain_completions();
        assert_eq!(done.len(), 1);
        assert!(done[0].is_ok());
        assert_eq!(sim.stats().internal, 2, "two chain hops");
        assert!(sim.dag_node_counters().is_empty(), "no DAG-engine spawns on a pure chain");
        assert!(sim.dag_join_stats().is_empty());
        assert!(sim.dag_tables_empty());
    }
}
